"""Pooled concurrency ≡ serialized reference, property-based (ISSUE 9).

The service layer's correctness claim: N threads replaying randomized
interleaved scripts through a :class:`~repro.service.pool.SessionPool`
observe exactly the outcomes — per-statement answers, applied flags,
errors, and final state — of the same statements executed serially, in
the same total order, on one plain session.

The interleaving is **seeded and barrier-driven**: a shuffled schedule
fixes which thread runs its next statement at every step, and a
condition-variable turnstile enforces it, so the "concurrent" execution
has a deterministic total order. That makes failures reproduce from the
case index alone, and makes the serialized replay a well-defined
reference. What the pooled run exercises on top of the reference is the
entire service machinery under real thread handoff: checkout/checkin
with thread re-pinning, per-statement snapshot sync, writer-lock
acquisition and atomic publication, rollback on error.

Parametrized over both inline strategies (physical / Figure 6
translate) and all three kernels (columnar / tuple / array when numpy
is present). ``REPRO_FUZZ_SCRIPTS`` scales the case count for the
nightly fuzz job; PR-time stays at 8 cases × 6 configurations = 48
replayed scripts.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.backend import InlineBackend
from repro.backend.testing import fuzz_range
from repro.errors import ReproError
from repro.isql import ISQLSession
from repro.relational import Relation
from repro.relational.array_kernel import have_numpy
from repro.service import SessionPool

BACKENDS = (
    ("inline[columnar]", lambda: InlineBackend(kernel="columnar")),
    ("inline[tuple]", lambda: InlineBackend(kernel="tuple")),
    (
        "translate[columnar]",
        lambda: InlineBackend(strategy="translate", kernel="columnar"),
    ),
    (
        "translate[tuple]",
        lambda: InlineBackend(strategy="translate", kernel="tuple"),
    ),
) + (
    (
        ("inline[array]", lambda: InlineBackend(kernel="array")),
        (
            "translate[array]",
            lambda: InlineBackend(strategy="translate", kernel="array"),
        ),
    )
    if have_numpy()
    else ()
)

N_THREADS = 3
UNITS_PER_THREAD = 4
STEP_TIMEOUT = 30.0


# -- case generation ---------------------------------------------------------------

CONDITIONS = (
    "V = 1",
    "W > 20",
    "K != 2 and V = 0",
    "V = 1 or W >= 30",
    "K + V > 2",
)

SET_CLAUSES = ("W = W + 1", "V = 3", "W = K * 10", "K = 1")

INSERT_ROWS = ("9, 0, 90", "1, 1, 11", "2, 5, 50")


def _statement(rng: random.Random, thread_index: int, unit_index: int) -> str:
    roll = rng.random()
    if roll < 0.15:
        return f"insert into Split values ({rng.choice(INSERT_ROWS)});"
    if roll < 0.35:
        return (
            f"update Split set {rng.choice(SET_CLAUSES)} "
            f"where {rng.choice(CONDITIONS)};"
        )
    if roll < 0.5:
        return f"delete from Split where {rng.choice(CONDITIONS)};"
    if roll < 0.6:
        return f"insert into U values ({rng.randrange(8)});"
    if roll < 0.7:
        # Per-thread-unique name: assignment collisions would otherwise
        # depend only on the schedule; uniqueness keeps them meaningful.
        return (
            f"A{thread_index}_{unit_index} <- select K, V from Split "
            f"where {rng.choice(CONDITIONS)};"
        )
    closing = rng.choice(("possible", "certain"))
    if rng.random() < 0.5:
        return f"select {closing} K, V, W from Split;"
    return f"select {closing} P from U;"


class Case:
    """One seeded concurrency case: data, per-thread units, a schedule."""

    def __init__(self, index: int) -> None:
        rng = random.Random(9000 + index)
        t_rows = {
            (k, rng.randrange(3), rng.randrange(1, 5) * 10)
            for k in range(rng.randrange(4, 8))
        }
        self.relations = (
            ("T", Relation(("K", "V", "W"), t_rows)),
            ("U", Relation(("P",), {(p,) for p in range(3)})),
        )
        self.keys = (("Split", ("K",)),) if rng.random() < 0.5 else ()
        self.setup = "Split <- select * from T choice of V;"
        self.units = [
            [_statement(rng, t, i) for i in range(UNITS_PER_THREAD)]
            for t in range(N_THREADS)
        ]
        schedule = [t for t in range(N_THREADS) for _ in range(UNITS_PER_THREAD)]
        rng.shuffle(schedule)
        self.schedule = schedule

    def seed_session(self, backend_factory) -> ISQLSession:
        session = ISQLSession(backend=backend_factory())
        for name, relation in self.relations:
            session.register(name, relation)
        for relation, attributes in self.keys:
            session.declare_key(relation, attributes)
        session.run_script(self.setup)
        return session


# -- outcomes ----------------------------------------------------------------------


def _outcome(results) -> object:
    """The comparable observation of one executed statement.

    The statement's kind is fixed by the unit text, so the observation
    is just its payload: the answer set for selects, the applied flag
    for DML, a marker for assignments.
    """
    last = results[-1] if results else None
    if last is None:
        return ("assign",)
    if hasattr(last, "answers"):
        return ("select", last.answers())
    return ("dml", last.applied)


def _cursor_outcome(cursor) -> object:
    """The same observation, read off a DBAPI cursor."""
    if cursor.result is not None:
        return ("select", cursor.result.answers())
    if cursor.applied is not None:
        return ("dml", cursor.applied)
    return ("assign",)


def _error_outcome(error: BaseException) -> object:
    # The facade wraps library errors with the original as __cause__;
    # compare by the underlying type so both replays speak one language.
    original = error.__cause__ if error.__cause__ is not None else error
    return ("error", type(original).__name__)


# -- the barrier-driven turnstile --------------------------------------------------


class Turnstile:
    """Enforces the case's total order across worker threads."""

    def __init__(self, schedule: list[int]) -> None:
        self._schedule = schedule
        self._step = 0
        self._condition = threading.Condition()
        self.aborted: BaseException | None = None

    def wait_turn(self, thread_index: int) -> int:
        with self._condition:
            while (
                self.aborted is None
                and self._schedule[self._step] != thread_index
            ):
                if not self._condition.wait(STEP_TIMEOUT):
                    raise RuntimeError(
                        f"turnstile stalled at step {self._step} "
                        f"(schedule {self._schedule})"
                    )
            if self.aborted is not None:
                raise RuntimeError("a sibling thread aborted") from self.aborted
            return self._step

    def advance(self) -> None:
        with self._condition:
            self._step += 1
            self._condition.notify_all()

    def abort(self, error: BaseException) -> None:
        with self._condition:
            if self.aborted is None:
                self.aborted = error
            self._condition.notify_all()


# -- the two replays ---------------------------------------------------------------


def _run_pooled(case: Case, backend_factory) -> tuple[list, ISQLSession]:
    """N threads through the pool; returns (outcomes by step, final session)."""
    pool = SessionPool(case.seed_session(backend_factory), size=2)
    turnstile = Turnstile(case.schedule)
    outcomes: list = [None] * len(case.schedule)
    failures: list[BaseException] = []

    def worker(thread_index: int) -> None:
        try:
            for unit in case.units[thread_index]:
                step = turnstile.wait_turn(thread_index)
                try:
                    with pool.connection() as connection:
                        outcomes[step] = _cursor_outcome(connection.execute(unit))
                except ReproError as error:
                    outcomes[step] = _error_outcome(error)
                turnstile.advance()
        except BaseException as error:  # noqa: BLE001 - surfaced below
            failures.append(error)
            turnstile.abort(error)

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=STEP_TIMEOUT * 2)
    assert not failures, failures
    assert all(not thread.is_alive() for thread in threads)
    final, _ = pool.store.spawn_session()
    pool.close()
    return outcomes, final


def _run_serialized(case: Case, backend_factory) -> tuple[list, ISQLSession]:
    """The reference: the same units, same total order, one session."""
    session = case.seed_session(backend_factory)
    cursors = [0] * N_THREADS
    outcomes: list = []
    for thread_index in case.schedule:
        unit = case.units[thread_index][cursors[thread_index]]
        cursors[thread_index] += 1
        try:
            outcomes.append(_outcome(session.run_script(unit)))
        except ReproError as error:
            outcomes.append(_error_outcome(error))
    return outcomes, session


@pytest.mark.parametrize("index", fuzz_range(8))
def test_pooled_interleaving_equals_serialized_reference(index):
    case = Case(index)
    for label, backend_factory in BACKENDS:
        pooled_outcomes, pooled_final = _run_pooled(case, backend_factory)
        serial_outcomes, serial_final = _run_serialized(case, backend_factory)
        context = (label, index, case.schedule)
        assert pooled_outcomes == serial_outcomes, context
        assert pooled_final.world_count() == serial_final.world_count(), context
        assert pooled_final.world_set == serial_final.world_set, context


def test_schedules_are_deterministic():
    """Same index → same case, bit for bit — failures reproduce."""
    first, second = Case(3), Case(3)
    assert first.schedule == second.schedule
    assert first.units == second.units
    assert first.keys == second.keys
    assert [r for _, r in first.relations] == [r for _, r in second.relations]
