"""PEP 249 conformance of the DBAPI facade (ISSUE 9).

Pins the module constants, the exception tree (rooted inside
``ReproError`` so the library-wide hygiene survives the facade), cursor
lifecycle and fetch semantics, parameter substitution, error shapes on
closed handles, the commit/rollback mapping onto the snapshot store,
and the snapshot-isolation surface (``pin_snapshot``).
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.isql import ISQLSession
from repro.relational import Relation
from repro.service import dbapi
from repro.service.dbapi import connect


@pytest.fixture
def conn():
    session = ISQLSession(backend="inline")
    session.register(
        "T", Relation(("K", "V"), [(1, 10), (2, 20), (3, 30)])
    )
    connection = connect(session)
    yield connection
    connection.close()


def test_module_constants():
    assert dbapi.apilevel == "2.0"
    assert dbapi.threadsafety == 1
    assert dbapi.paramstyle == "qmark"


def test_exception_tree_is_pep249_shaped_and_repro_rooted():
    assert issubclass(dbapi.Error, ReproError)
    for leaf in (
        dbapi.InterfaceError,
        dbapi.DatabaseError,
    ):
        assert issubclass(leaf, dbapi.Error)
    for leaf in (
        dbapi.DataError,
        dbapi.OperationalError,
        dbapi.IntegrityError,
        dbapi.InternalError,
        dbapi.ProgrammingError,
        dbapi.NotSupportedError,
    ):
        assert issubclass(leaf, dbapi.DatabaseError)
    assert issubclass(dbapi.Warning, Exception)
    assert not issubclass(dbapi.Warning, dbapi.Error)


def test_connect_rejects_unknown_sources_and_names():
    with pytest.raises(dbapi.InterfaceError):
        connect(42)
    with pytest.raises(dbapi.ProgrammingError) as info:
        connect("no_such_scenario")
    assert "trip_certain" in str(info.value)  # the message lists the registry


def test_connect_scenario_by_name_and_query(tmp_path):
    conn = connect("trip_certain")
    rows = conn.execute(
        "select certain Arr from HFlights choice of Dep;"
    ).fetchall()
    assert rows == [("A0",)]
    conn.close()


# -- cursor lifecycle and fetch semantics ------------------------------------------


def test_fetch_semantics_one_many_all(conn):
    cur = conn.cursor()
    cur.execute("select possible K, V from T;")
    assert cur.description == (
        ("K", None, None, None, None, None, None),
        ("V", None, None, None, None, None, None),
    )
    assert cur.rowcount == 3
    assert cur.fetchone() == (1, 10)
    assert cur.fetchmany(1) == [(2, 20)]
    assert cur.fetchall() == [(3, 30)]
    assert cur.fetchone() is None
    assert cur.fetchall() == []


def test_cursor_iteration_and_arraysize(conn):
    cur = conn.execute("select possible K from T;")
    assert list(cur) == [(1,), (2,), (3,)]
    cur.execute("select possible K from T;")
    cur.arraysize = 2
    assert cur.fetchmany() == [(1,), (2,)]


def test_execute_resets_prior_results(conn):
    cur = conn.cursor()
    cur.execute("select possible K from T;")
    cur.fetchone()
    cur.execute("select possible V from T;")
    assert cur.fetchall() == [(10,), (20,), (30,)]
    assert cur.description == (("V", None, None, None, None, None, None),)


def test_dml_sets_applied_not_rows(conn):
    cur = conn.execute("insert into T values (4, 40);")
    assert cur.applied is True
    assert cur.description is None
    assert cur.rowcount == -1
    with pytest.raises(dbapi.ProgrammingError):
        cur.fetchall()


def test_fetch_before_execute_raises(conn):
    with pytest.raises(dbapi.ProgrammingError):
        conn.cursor().fetchone()


def test_world_divergent_answer_refuses_fetch_but_keeps_result(conn):
    cur = conn.execute("select K, V from T choice of K;")
    with pytest.raises(dbapi.ProgrammingError) as info:
        cur.fetchall()
    assert "differs across worlds" in str(info.value)
    assert len(cur.result.answers()) == 3
    assert cur.result.possible().rows == {(1, 10), (2, 20), (3, 30)}


def test_executemany_runs_per_parameter_row(conn):
    cur = conn.cursor()
    cur.executemany(
        "insert into T values (?, ?);", [(7, 70), (8, 80)]
    )
    rows = conn.execute("select possible K from T where K >= 7;").fetchall()
    assert rows == [(7,), (8,)]


# -- parameter substitution --------------------------------------------------------


def test_qmark_substitution_types_and_literal_quotes(conn):
    cur = conn.execute("select possible K from T where K = ? and V = ?;", (2, 20))
    assert cur.fetchall() == [(2,)]
    # A '?' inside a string literal is not a placeholder.
    conn.execute("insert into T values (9, 90);")
    session = conn.session
    session.register("S", Relation(("Name",), [("?",), ("x",)]))
    cur = conn.execute("select possible Name from S where Name = '?';")
    assert cur.fetchall() == [("?",)]


def test_parameter_count_mismatch(conn):
    with pytest.raises(dbapi.InterfaceError):
        conn.execute("select possible K from T where K = ?;", ())
    with pytest.raises(dbapi.InterfaceError):
        conn.execute("select possible K from T where K = ?;", (1, 2))
    with pytest.raises(dbapi.InterfaceError):
        conn.execute("select possible K from T where K = ?;", "1")


def test_unrepresentable_parameters(conn):
    with pytest.raises(dbapi.DataError):
        # The I-SQL lexer has no quote escapes: quoted strings are out.
        conn.execute("select possible K from T where V = ?;", ("it's",))
    with pytest.raises(dbapi.NotSupportedError):
        conn.execute("select possible K from T where V = ?;", (None,))
    with pytest.raises(dbapi.NotSupportedError):
        conn.execute("select possible K from T where V = ?;", (True,))
    with pytest.raises(dbapi.InterfaceError):
        conn.execute("select possible K from T where V = ?;", (object(),))


# -- error mapping -----------------------------------------------------------------


def test_parse_and_schema_errors_map_to_programming_error(conn):
    with pytest.raises(dbapi.ProgrammingError):
        conn.execute("select certain from from;")
    with pytest.raises(dbapi.ProgrammingError):
        conn.execute("select possible K from NoSuchRelation;")


def test_resource_budget_maps_to_operational_error():
    session = ISQLSession(backend="inline")
    session.register("T", Relation(("K",), [(k,) for k in range(50)]))
    conn = connect(session, max_rows=3)
    with pytest.raises(dbapi.OperationalError):
        conn.execute("select possible K from T;")
    conn.close()


# -- closed-handle error shapes ----------------------------------------------------


def test_closed_cursor_error_shapes(conn):
    cur = conn.execute("select possible K from T;")
    cur.close()
    for call in (
        lambda: cur.execute("select possible K from T;"),
        cur.fetchone,
        cur.fetchall,
    ):
        with pytest.raises(dbapi.InterfaceError, match="cursor is closed"):
            call()


def test_closed_connection_error_shapes():
    conn = connect("trip_certain")
    cur = conn.cursor()
    conn.close()
    conn.close()  # idempotent
    for call in (
        conn.cursor,
        lambda: conn.execute("select possible Arr from HFlights;"),
        conn.commit,
        conn.rollback,
        conn.pin_snapshot,
        lambda: cur.execute("select possible Arr from HFlights;"),
    ):
        with pytest.raises(dbapi.InterfaceError):
            call()


# -- transactions over the snapshot store ------------------------------------------


def test_commit_publishes_rollback_discards(conn):
    peer = connect(conn.store)
    conn.execute("insert into T values (5, 50);")
    assert conn.in_transaction
    assert peer.execute("select possible K from T where K = 5;").fetchall() == []
    conn.commit()
    assert not conn.in_transaction
    assert peer.execute("select possible K from T where K = 5;").fetchall() == [(5,)]

    conn.execute("insert into T values (6, 60);")
    conn.rollback()
    assert peer.execute("select possible K from T where K = 6;").fetchall() == []
    assert conn.execute("select possible K from T where K = 6;").fetchall() == []
    peer.close()


def test_commit_and_rollback_without_transaction_are_noops(conn):
    conn.commit()
    conn.rollback()
    assert conn.version == conn.store.version


def test_transaction_spans_multiple_statements_atomically(conn):
    peer = connect(conn.store)
    conn.execute("insert into T values (5, 50);")
    conn.execute("delete from T where K = 1;")
    conn.execute("Split <- select * from T choice of V;")
    assert peer.execute("select possible K from T;").fetchall() == [(1,), (2,), (3,)]
    conn.commit()
    assert peer.execute("select possible K from T where K = 5;").fetchall() == [(5,)]
    assert "Split" in peer.session.relation_names()
    peer.close()


def test_autocommit_publishes_per_execute():
    session = ISQLSession(backend="inline")
    session.register("T", Relation(("K",), [(1,)]))
    conn = connect(session, autocommit=True)
    peer = connect(conn.store)
    conn.execute("insert into T values (2);")
    assert not conn.in_transaction
    assert peer.execute("select possible K from T;").fetchall() == [(1,), (2,)]
    # An autocommit script is all-or-nothing: a failing statement
    # publishes nothing and releases the writer lock.
    with pytest.raises(dbapi.ProgrammingError):
        conn.execute("insert into T values (3); select broken syntax from;")
    assert not conn.in_transaction
    assert peer.execute("select possible K from T;").fetchall() == [(1,), (2,)]
    peer.execute("insert into T values (9);")  # lock is free
    peer.commit()
    conn.close()
    peer.close()


def test_connection_context_manager_commits_or_rolls_back():
    session = ISQLSession(backend="inline")
    session.register("T", Relation(("K",), [(1,)]))
    conn = connect(session)
    with conn:
        conn.execute("insert into T values (2);")
    assert conn.store.version == 1
    with pytest.raises(RuntimeError):
        with conn:
            conn.execute("insert into T values (3);")
            raise RuntimeError("boom")
    assert conn.execute("select possible K from T;").fetchall() == [(1,), (2,)]
    conn.close()


def test_close_rolls_back_open_transaction():
    session = ISQLSession(backend="inline")
    session.register("T", Relation(("K",), [(1,)]))
    conn = connect(session)
    peer = connect(conn.store)
    conn.execute("insert into T values (2);")
    conn.close()
    # The writer lock was released and nothing was published.
    peer.execute("insert into T values (3);")
    peer.commit()
    assert peer.execute("select possible K from T;").fetchall() == [(1,), (3,)]
    peer.close()


def test_lock_timeout_surfaces_as_operational_error():
    session = ISQLSession(backend="inline")
    session.register("T", Relation(("K",), [(1,)]))
    writer = connect(session)
    blocked = connect(writer.store, lock_timeout=0.01)
    writer.execute("insert into T values (2);")
    with pytest.raises(dbapi.OperationalError, match="writer lock"):
        blocked.execute("insert into T values (3);")
    writer.commit()
    blocked.execute("insert into T values (3);")  # lock free again
    blocked.commit()
    writer.close()
    blocked.close()


# -- snapshot isolation ------------------------------------------------------------


def test_read_committed_by_default_pinned_snapshot_on_demand(conn):
    reader = connect(conn.store)
    assert reader.execute("select possible K from T;").fetchall() == [
        (1,),
        (2,),
        (3,),
    ]
    pinned = reader.pin_snapshot()
    conn.execute("insert into T values (5, 50);")
    conn.commit()
    # Pinned: the committed write stays invisible however often we read.
    assert reader.execute("select possible K from T where K = 5;").fetchall() == []
    assert reader.version == pinned
    reader.unpin_snapshot()
    assert reader.execute("select possible K from T where K = 5;").fetchall() == [
        (5,)
    ]
    reader.close()


def test_pinned_connection_refuses_writes(conn):
    reader = connect(conn.store)
    reader.pin_snapshot()
    with pytest.raises(dbapi.ProgrammingError, match="pinned"):
        reader.execute("insert into T values (5, 50);")
    reader.unpin_snapshot()
    reader.execute("insert into T values (5, 50);")
    reader.rollback()
    reader.close()


def test_pin_inside_transaction_is_refused(conn):
    conn.execute("insert into T values (5, 50);")
    with pytest.raises(dbapi.ProgrammingError):
        conn.pin_snapshot()
    conn.rollback()
