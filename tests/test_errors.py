"""The exception hierarchy and error ergonomics."""

import pytest

from repro.errors import (
    EvaluationError,
    ParseError,
    RepresentationError,
    ReproError,
    RewriteError,
    SchemaError,
    TranslationError,
    TypingError,
)


def test_all_errors_derive_from_repro_error():
    for error in (
        SchemaError,
        EvaluationError,
        TypingError,
        ParseError,
        RewriteError,
        RepresentationError,
        TranslationError,
    ):
        assert issubclass(error, ReproError)


def test_parse_error_records_position():
    error = ParseError("bad token", position=17)
    assert "offset 17" in str(error)
    assert error.position == 17


def test_parse_error_without_position():
    error = ParseError("bad token")
    assert str(error) == "bad token"
    assert error.position is None


def test_catching_the_base_class_is_enough():
    from repro.isql import parse_statement

    with pytest.raises(ReproError):
        parse_statement("select from where")
