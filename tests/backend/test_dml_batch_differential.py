"""Batched DML ≡ statement-at-a-time, property-based (ISSUE 5).

``ISQLSession.run_script`` coalesces consecutive subquery-free DML
statements against one relation into a single ``backend.run_dml_batch``
call; the inline backend applies the whole run in one pass over the
flat table and commits once. That is allowed to change *cost* only:
this suite holds ``run_script`` to row-for-row (and applied-flag-for-
applied-flag) equivalence with ``execute`` on every backend — explicit,
inline physical, Figure 6 translate — under both execution kernels, and
additionally holds all backends to each other on the batched route.

Randomized scripts mix inserts, updates and deletes over a split
relation and a complete one (batch boundaries arise from relation
switches), with key constraints generating mid-batch discards. The
deterministic edge tests pin the corners randomized scripts would make
flaky: key-violation rejection *ordering* inside a batch, the
no-op-DML laziness edge (a batch over a lazily stored table must not
make it grow id columns), mid-batch error parity, and insert
deduplication.
"""

from __future__ import annotations

import random

import pytest

from repro.backend import InlineBackend
from repro.backend.testing import assert_backends_agree, fuzz_range
from repro.datagen import Scenario
from repro.errors import SchemaError
from repro.isql import ISQLSession
from repro.isql.session import DMLResult
from repro.relational import Relation
from repro.relational.array_kernel import have_numpy

BACKENDS = (
    ("explicit", "explicit"),
    ("inline[columnar]", lambda: InlineBackend(kernel="columnar")),
    ("inline[tuple]", lambda: InlineBackend(kernel="tuple")),
    (
        "translate[columnar]",
        lambda: InlineBackend(strategy="translate", kernel="columnar"),
    ),
    (
        "translate[tuple]",
        lambda: InlineBackend(strategy="translate", kernel="tuple"),
    ),
) + (
    (
        ("inline[array]", lambda: InlineBackend(kernel="array")),
        (
            "translate[array]",
            lambda: InlineBackend(strategy="translate", kernel="array"),
        ),
    )
    if have_numpy()
    else ()
)

CONDITIONS = (
    "V = 1",
    "W > 20",
    "K != 2 and V = 0",
    "V = 1 or W >= 30",
    "not (W <= 20)",
    "K + V > 2",
)

SET_CLAUSES = (
    "W = W + 1",
    "V = 3",
    "W = K * 10",
    "K = 1",  # collides under a key on K: exercises mid-batch discards
    "V = W, W = V",  # every clause reads the pre-update row
)

INSERT_ROWS = ("9, 0, 90", "1, 1, 11", "2, 5, 50")


def _relations(rng: random.Random) -> tuple[tuple[str, Relation], ...]:
    t_rows = {
        (k, rng.randrange(3), rng.randrange(1, 5) * 10)
        for k in range(rng.randrange(3, 7))
    }
    u_rows = {(p,) for p in rng.sample(range(6), k=rng.randrange(1, 4))}
    return (
        ("T", Relation(("K", "V", "W"), t_rows)),
        ("U", Relation(("P",), u_rows)),
    )


def _statement(rng: random.Random, target: str) -> str:
    roll = rng.random()
    if target == "U":
        if roll < 0.4:
            return f"insert into U values ({rng.randrange(8)});"
        return f"delete from U where P >= {rng.randrange(6)};"
    if roll < 0.25:
        return f"insert into {target} values ({rng.choice(INSERT_ROWS)});"
    if roll < 0.6:
        return (
            f"update {target} set {rng.choice(SET_CLAUSES)} "
            f"where {rng.choice(CONDITIONS)};"
        )
    return f"delete from {target} where {rng.choice(CONDITIONS)};"


def _batch_case(rng: random.Random, index: int) -> Scenario:
    # A split target and a complete one; consecutive same-relation
    # statements batch, relation switches close batches mid-script.
    statements = ["Split <- select * from T choice of V;"]
    targets = [rng.choice(("Split", "Split", "T", "U")) for _ in range(rng.randrange(2, 7))]
    statements.extend(_statement(rng, target) for target in targets)
    keys = (("Split", ("K",)),) if rng.random() < 0.5 else ()
    closing = rng.choice(("possible", "certain"))
    return Scenario(
        name=f"dml_batch_{index}",
        relations=_relations(rng),
        keys=keys,
        script="".join(statements),
        query=f"select {closing} K, V, W from Split;",
        approx_worlds=4,
    )


def _replay(scenario: Scenario, backend, batched: bool):
    resolved = backend() if callable(backend) else backend
    session = ISQLSession(backend=resolved)
    for name, relation in scenario.relations:
        session.register(name, relation)
    for relation, attributes in scenario.keys:
        session.declare_key(relation, attributes)
    runner = session.run_script if batched else session.execute
    results = runner(scenario.script)
    flags = [
        (result.kind, result.applied)
        for result in results
        if isinstance(result, DMLResult)
    ]
    return session, flags


@pytest.mark.parametrize("index", fuzz_range(48))
def test_batched_equals_statement_at_a_time_per_backend(index):
    """run_script vs execute: same flags, same state, every backend."""
    rng = random.Random(5000 + index)
    scenario = _batch_case(rng, index)
    for label, backend in BACKENDS:
        batched_session, batched_flags = _replay(scenario, backend, batched=True)
        plain_session, plain_flags = _replay(scenario, backend, batched=False)
        assert batched_flags == plain_flags, (label, scenario.script)
        assert batched_session.world_count() == plain_session.world_count(), (
            label,
            scenario.script,
        )
        assert batched_session.world_set == plain_session.world_set, (
            label,
            scenario.script,
        )


@pytest.mark.parametrize("index", fuzz_range(24))
def test_batched_backends_agree_with_each_other(index):
    """The batched route itself, differentially across all backends
    (run_scenario executes scripts through run_script)."""
    rng = random.Random(5000 + index)
    assert_backends_agree(_batch_case(rng, index), BACKENDS)


@pytest.mark.parametrize("index", fuzz_range(24))
def test_batched_scripts_are_fallback_free(index):
    from repro.backend.testing import run_scenario

    rng = random.Random(5000 + index)
    scenario = _batch_case(rng, index)
    for label, backend in BACKENDS[1:]:
        session, _ = run_scenario(scenario, backend)
        assert not list(session.backend.fallback_events), (
            label,
            list(session.backend.fallback_events),
        )


def _session(backend="inline", key: bool = True) -> ISQLSession:
    session = ISQLSession(backend=backend)
    session.register(
        "T", Relation(("K", "V", "W"), [(1, 0, 10), (2, 1, 20), (3, 0, 30)])
    )
    if key:
        session.declare_key("T", ("K",))
    return session


@pytest.mark.parametrize("backend", ["explicit", "inline", "inline-translate"])
class TestBatchEdges:
    def test_key_rejection_ordering_inside_a_batch(self, backend):
        """A discarded statement is discarded *alone*: earlier and later
        statements of the same batch still apply, in order."""
        session = _session(backend)
        results = session.run_script(
            "insert into T values (4, 2, 40);"   # applies
            "insert into T values (1, 9, 99);"   # key collision: discarded
            "update T set K = 1 where V = 0;"    # collides (two V=0 rows → K=1): discarded
            "delete from T where K = 2;"         # still applies
            "update T set W = 0 where K = 4;"    # applies to the first insert's row
        )
        assert [r.applied for r in results] == [True, False, False, True, True]
        assert session.world_set.the_world()["T"].rows == {
            (1, 0, 10),
            (3, 0, 30),
            (4, 2, 0),
        }

    def test_noop_batch_keeps_lazily_stored_table(self, backend):
        """A batch matching nothing must not expand or replicate a
        lazily stored table over the session's world ids."""
        session = _session(backend, key=False)
        session.register("Solo", Relation(("P",), [(7,), (8,)]))
        session.execute("Split <- select * from T choice of V;")
        session.run_script(
            "delete from Solo where P = 99;"
            "update Solo set P = 0 where P = 99;"
        )
        assert {frozenset(w["Solo"].rows) for w in session.world_set.worlds} == {
            frozenset({(7,), (8,)})
        }
        if backend != "explicit":
            inline_rep = session.backend.representation
            assert inline_rep.table_id_attrs("Solo") == ()

    def test_mid_batch_error_commits_applied_prefix(self, backend):
        """An arity error mid-batch raises like execute() — with the
        statements before it already applied."""
        for batched in (False, True):
            session = _session(backend, key=False)
            script = (
                "delete from T where K = 1;"
                "insert into T values (5, 5);"  # arity 2 ≠ 3: raises
                "delete from T where K = 2;"
            )
            runner = session.run_script if batched else session.execute
            with pytest.raises(SchemaError):
                runner(script)
            assert session.world_set.the_world()["T"].rows == {
                (2, 1, 20),
                (3, 0, 30),
            }, ("batched" if batched else "plain")

    def test_insert_dedup_and_reinsert(self, backend):
        """Inserting an existing row is a set-semantics no-op (applied),
        and a batch of identical inserts collapses to one row."""
        session = _session(backend, key=False)
        results = session.run_script(
            "insert into T values (1, 0, 10);"
            "insert into T values (6, 0, 60);"
            "insert into T values (6, 0, 60);"
        )
        assert [r.applied for r in results] == [True, True, True]
        assert session.world_set.the_world()["T"].rows == {
            (1, 0, 10),
            (2, 1, 20),
            (3, 0, 30),
            (6, 0, 60),
        }

    def test_batch_over_split_relation_inserts_per_world(self, backend):
        """An insert inside a batch lands in every world of a split
        relation; a later delete in the same batch sees it."""
        session = _session(backend, key=False)
        session.execute("Split <- select * from T choice of V;")
        results = session.run_script(
            "insert into Split values (9, 9, 90);"
            "update Split set W = 91 where K = 9;"
            "delete from Split where V = 1;"
        )
        assert [r.applied for r in results] == [True, True, True]
        worlds = {frozenset(w["Split"].rows) for w in session.world_set.worlds}
        assert worlds == {
            frozenset({(1, 0, 10), (3, 0, 30), (9, 9, 91)}),
            frozenset({(9, 9, 91)}),
        }


@pytest.mark.parametrize("backend", ["explicit", "inline", "inline-translate"])
def test_empty_declared_key_is_no_constraint_in_batches(backend):
    """A degenerate ``declare_key(T, ())`` constrains nothing on the
    statement-at-a-time paths; the batch pipeline must agree (review
    finding: ``key is not None`` vs truthiness diverged here)."""
    for batched in (False, True):
        session = _session(backend, key=False)
        session.declare_key("T", ())
        runner = session.run_script if batched else session.execute
        results = runner(
            "insert into T values (4, 4, 40);"
            "insert into T values (5, 5, 50);"
            "update T set W = 0 where K = 4;"
        )
        assert [r.applied for r in results] == [True, True, True], (
            backend,
            "batched" if batched else "plain",
        )
        assert session.world_set.the_world()["T"].rows == {
            (1, 0, 10),
            (2, 1, 20),
            (3, 0, 30),
            (4, 4, 0),
            (5, 5, 50),
        }


def test_run_script_matches_execute_results_shape():
    """Non-DML statements pass through unchanged, one result per
    statement, DMLResult kinds preserved."""
    session = _session("inline", key=False)
    results = session.run_script(
        "Split <- select * from T choice of V;"
        "insert into T values (7, 7, 70);"
        "delete from T where K = 7;"
        "select possible K from Split;"
    )
    assert results[0] is None
    assert isinstance(results[1], DMLResult) and results[1].kind == "insert"
    assert isinstance(results[2], DMLResult) and results[2].kind == "delete"
    assert results[3].possible() == Relation(("K",), [(1,), (2,), (3,)])
