"""Property-based differential suite for DML with subqueries (ISSUE 4).

PR 4 moved the last documented residue — condition subqueries under
``or``, non-aggregate scalar subqueries, and DML whose conditions or
set expressions contain subqueries — from the explicit fallback onto
the inlined representation. This suite holds the flat DML evaluation to
the engine's Section 3 semantics: randomized scripts build a split
session state, run subquery-bearing delete/update statements on it, and
must leave identical states and answers on the explicit backend, the
inline physical backend, the Figure 6 translate backend and the tuple
kernel — with the inline routes asserted fallback-free.

Cases are generated deterministically from a seed so failures replay.
Deterministic edge tests pin the corners randomized scripts would make
flaky: the scalar cardinality error, key-constraint rejection, empty
tables, and worlds whose table empties out (dangling world ids).
"""

from __future__ import annotations

import random

import pytest

from repro.backend import InlineBackend
from repro.backend.testing import assert_backends_agree, fuzz_range
from repro.datagen import Scenario
from repro.errors import EvaluationError
from repro.isql import ISQLSession
from repro.relational import Relation
from repro.relational.array_kernel import have_numpy

BACKENDS = (
    "explicit",
    "inline",
    "inline-translate",
    ("inline-tuple", lambda: InlineBackend(kernel="tuple")),
) + (
    (("inline-array", lambda: InlineBackend(kernel="array")),)
    if have_numpy()
    else ()
)

FALLBACK_FREE = BACKENDS[1:]


def _relations(rng: random.Random) -> tuple[tuple[str, Relation], ...]:
    """Target T(K, V, W) and helper H(X, Y); H is unique on X so that
    non-aggregate scalar subqueries keyed on X stay single-valued."""
    t_rows = {
        (k, rng.randrange(4), rng.randrange(1, 5) * 10)
        for k in range(rng.randrange(3, 8))
    }
    xs = rng.sample(range(4), k=rng.randrange(2, 5))
    h_rows = {(x, rng.randrange(1, 4) * 100) for x in xs}
    return (
        ("T", Relation(("K", "V", "W"), t_rows)),
        ("H", Relation(("X", "Y"), h_rows)),
    )


CONDITIONS = (
    "V in (select X from H)",
    "V not in (select X from H)",
    "exists (select * from H where X = V)",
    "not exists (select * from H where X = V and Y > 100)",
    "W > (select min(Y) from H where X = V)",
    "W + 100 >= (select Y from H where X = V)",
    "V in (select X from H) or W > 30",
    "exists (select * from H where X = V) or K in (select X from H)",
    "not (V in (select X from H) and W > 20)",
    # Subqueries over the *split* relation: their answers vary per
    # world, so these route through the general id-expanded
    # mask/scatter path rather than the value-determined one — both
    # flat DML routes stay under randomized differential coverage.
    "K in (select K from Split where W > 10)",
    "W >= (select max(W) from Split)",
    "exists (select * from Split where W > 20) or V in (select X from H)",
)

SET_CLAUSES = (
    "W = W + 1",
    "W = (select count(Y) from H where X = V) * 10",
    "W = (select Y from H where X = V) + K",
    "V = (select min(X) from H)",
    "W = (select sum(Y) from H) - W",
    # Split-keyed set input: the general path's per-world-id scatter.
    "W = (select count(K) from Split) * 10",
)


def _dml_case(rng: random.Random, index: int) -> Scenario:
    split_attr = rng.choice(("V", "W"))
    statements = [f"Split <- select * from T choice of {split_attr};"]
    for _ in range(rng.randrange(1, 4)):
        target = rng.choice(("Split", "Split", "T"))
        if rng.random() < 0.5:
            statements.append(
                f"delete from {target} where {rng.choice(CONDITIONS)};"
            )
        else:
            statements.append(
                f"update {target} set {rng.choice(SET_CLAUSES)} "
                f"where {rng.choice(CONDITIONS)};"
            )
    closing = rng.choice(("possible", "certain"))
    return Scenario(
        name=f"dml_{index}",
        relations=_relations(rng),
        script="".join(statements),
        query=f"select {closing} K, V, W from Split;",
        approx_worlds=5,
    )


@pytest.mark.parametrize("index", fuzz_range(64))
def test_randomized_dml_scripts_agree(index):
    rng = random.Random(4000 + index)
    scenario = _dml_case(rng, index)
    assert_backends_agree(scenario, BACKENDS)


@pytest.mark.parametrize("index", fuzz_range(16))
def test_randomized_dml_scripts_are_fallback_free(index):
    """Every generated statement must stay on the flat tables."""
    from repro.backend.testing import run_scenario

    rng = random.Random(4000 + index)
    scenario = _dml_case(rng, index)
    for label, backend in (b if isinstance(b, tuple) else (b, b) for b in FALLBACK_FREE):
        session, _ = run_scenario(scenario, backend)
        assert not list(session.backend.fallback_events), (
            label,
            list(session.backend.fallback_events),
        )


def _session(backend, keys: dict | None = None) -> ISQLSession:
    s = ISQLSession(backend=backend)
    s.register("T", Relation(("K", "V", "W"), [(1, 0, 10), (2, 1, 20), (3, 0, 30)]))
    s.register("H", Relation(("X", "Y"), [(0, 100), (1, 200)]))
    for relation, attributes in (keys or {}).items():
        s.declare_key(relation, attributes)
    return s


@pytest.mark.parametrize("backend", ["explicit", "inline", "inline-translate"])
class TestDeterministicEdges:
    def test_scalar_cardinality_error_parity(self, backend):
        """A many-valued scalar subquery errors on every route alike."""
        s = _session(backend)
        s.register("Multi", Relation(("X", "Y"), [(0, 1), (0, 2)]))
        with pytest.raises(EvaluationError, match="more than one row"):
            s.execute("update T set W = (select Y from Multi where X = V) "
                      "where V = 0;")

    def test_scalar_error_is_lazy_when_no_row_matches(self, backend):
        """No matched row ever reads the ambiguous group: no error."""
        s = _session(backend)
        s.register("Multi", Relation(("X", "Y"), [(9, 1), (9, 2)]))
        s.execute("update T set W = (select Y from Multi where X = V) "
                  "where V in (select X from Multi);")
        assert s.world_set.the_world()["T"].rows == {
            (1, 0, 10), (2, 1, 20), (3, 0, 30)
        }

    def test_empty_scalar_subquery_defaults_to_zero(self, backend):
        """The engine's empty scalar subquery evaluates to 0."""
        s = _session(backend)
        s.execute("update T set W = (select Y from H where X = W) "
                  "where V = 1;")
        assert s.world_set.the_world()["T"].rows == {
            (1, 0, 10), (2, 1, 0), (3, 0, 30)
        }

    def test_key_violation_discards_in_all_worlds(self, backend):
        s = _session(backend, keys={"Split": ("K",)})
        s.execute("Split <- select * from T choice of V;")
        # V=0 worlds hold K ∈ {1, 3}: collapsing K to 9 collides there,
        # so the update must be discarded in *every* world.
        s.execute("update Split set K = 9 "
                  "where V in (select X from H where Y >= 100);")
        worlds = {frozenset(w["Split"].rows) for w in s.world_set.worlds}
        assert worlds == {
            frozenset({(1, 0, 10), (3, 0, 30)}),
            frozenset({(2, 1, 20)}),
        }

    def test_delete_emptying_one_world_keeps_the_world(self, backend):
        """A world whose table empties still exists (dangling world id)."""
        s = _session(backend)
        s.execute("Split <- select * from T choice of V;")
        s.execute("delete from Split where exists "
                  "(select * from H where X = V and Y <= 100);")
        assert s.world_count() == 2
        worlds = {frozenset(w["Split"].rows) for w in s.world_set.worlds}
        assert worlds == {frozenset(), frozenset({(2, 1, 20)})}

    def test_dml_on_empty_relation(self, backend):
        s = ISQLSession(backend=backend)
        s.register("T", Relation(("K", "V", "W"), []))
        s.register("H", Relation(("X", "Y"), [(0, 100)]))
        s.execute("delete from T where V in (select X from H);")
        s.execute("update T set W = (select Y from H where X = V) "
                  "where exists (select * from H where X = V);")
        assert s.world_set.the_world()["T"].rows == set()

    def test_update_reads_preupdate_rows(self, backend):
        """Every set clause evaluates against the original row."""
        s = _session(backend)
        s.execute("update T set V = W, W = (select count(Y) from H "
                  "where X = V) where K in (select X from H) or K >= 1;")
        # V := old W; W := count keyed on old V (0→1 match, 1→1 match).
        assert s.world_set.the_world()["T"].rows == {
            (1, 10, 1), (2, 20, 1), (3, 30, 1)
        }

    def test_non_world_local_dml_subquery_parity(self, backend):
        """A world-splitting DML subquery raises on every route alike."""
        s = _session(backend)
        with pytest.raises(EvaluationError):
            s.execute("delete from T where V in "
                      "(select X from H choice of X);")


class TestErrorOrderParity:
    """The flat route raises exactly where the engine's row-at-a-time
    left-to-right short-circuit does — pinned after review found two
    divergences in the first cut of ISSUE 4."""

    ROWS = [(1, 10), (2, 20)]
    MULTI = [(5, 1), (6, 1)]  # two C values for every D: ambiguous

    def _sessions(self):
        for backend in ("explicit", "inline", "inline-translate"):
            s = ISQLSession(backend=backend)
            s.register("R", Relation(("A", "B"), self.ROWS))
            s.register("S", Relation(("C", "D"), self.MULTI))
            yield backend, s

    def test_scalar_under_or_agrees_via_fallback(self):
        """`A = 1 or B = (sub)`: the engine short-circuits, so the row
        with A = 1 never reads the ambiguous scalar — a union branch
        would. The compiler routes scalar-under-or to the fallback, so
        both backends return the same answer (and the same error when
        every row reaches the subquery)."""
        query = (
            "select A from R where A = 1 or "
            "B = (select C from S where D = A);"
        )
        outcomes = {}
        for backend, s in self._sessions():
            try:
                outcomes[backend] = s.query(query).relation.sorted_rows()
            except EvaluationError as error:
                outcomes[backend] = str(error)
        assert len(set(map(repr, outcomes.values()))) == 1, outcomes

    def test_conjunct_order_preserves_engine_laziness(self):
        """`A = 99 and B = (sub)`: no row survives the first conjunct,
        so the engine never reads the ambiguous scalar — neither may
        the flat route (conjuncts compile in syntactic order)."""
        query = (
            "select A from R where A = 99 and "
            "B = (select C from S where D = 1);"
        )
        for backend, s in self._sessions():
            assert s.query(query).relation.sorted_rows() == [], backend

    def test_conjunct_order_preserves_engine_errors(self):
        """`B = (sub) and A = 99`: the engine evaluates the scalar
        first, for every row — the flat route must raise too, not hide
        the error behind a reordered plain filter."""
        query = (
            "select A from R where B = (select C from S where D = 1) "
            "and A = 99;"
        )
        for backend, s in self._sessions():
            with pytest.raises(EvaluationError, match="more than one row"):
                s.query(query)


class TestNoOpDMLStaysLazy:
    """A DML statement matching nothing must not commit an id-expanded
    copy of a lazily stored table (review finding on _apply_delete)."""

    @pytest.mark.parametrize("statement", [
        "delete from U where P in (select X from H where Y = 99);",
        "update U set P = (select min(X) from H) where P in "
        "(select X from H where Y = 99);",
    ])
    def test_table_keeps_its_id_columns(self, statement):
        s = ISQLSession(backend="inline")
        s.register("T", Relation(("K", "V"), [(1, 0), (2, 1), (3, 2)]))
        s.register("H", Relation(("X", "Y"), [(0, 100), (1, 200)]))
        s.register("U", Relation(("P",), [(7,), (8,)]))
        s.execute("Split <- select * from T choice of V;")  # 3 worlds
        before = s.backend.representation.tables["U"]
        assert s.backend.representation.table_id_attrs("U") == ()
        s.execute(statement)  # matches nothing; H/Split ids must not leak
        after = s.backend.representation.tables["U"]
        assert s.backend.representation.table_id_attrs("U") == ()
        assert after.rows == before.rows
