"""Kernel equivalence: the array, columnar and tuple engines everywhere.

`REPRO_KERNEL=array|columnar|tuple` (or `InlineBackend(kernel=...)`)
selects how the inline backend's flat-table plans execute; it must
never change what they compute. This suite replays every datagen
scenario and a randomized world-set-algebra differential on all
kernels (with the explicit backend as the reference semantics), covers
the translate strategy's kernel routes, and pins the dangling-world-id
decode edge (world ids with no rows encode empty worlds on any
kernel). Without numpy the array entries drop out cleanly — the
remaining 2-way differential still runs.
"""

import pytest

from repro.backend import InlineBackend
from repro.backend.testing import assert_backends_agree
from repro.core import evaluate, rel
from repro.datagen import random_query, random_world_set, scenarios
from repro.inline.representation import InlinedRepresentation
from repro.relational import Relation
from repro.relational.array_kernel import have_numpy

SMALL = {s.name: s for s in scenarios("small")}

#: Every registered kernel; "array" joins when numpy is importable.
KERNEL_NAMES = ("columnar", "tuple") + (("array",) if have_numpy() else ())

KERNELS = tuple(
    (f"inline[{name}]", lambda name=name: InlineBackend(kernel=name))
    for name in KERNEL_NAMES
)


@pytest.mark.parametrize("name", sorted(SMALL))
def test_kernels_agree_with_explicit_on_every_scenario(name):
    assert_backends_agree(SMALL[name], ("explicit",) + KERNELS)


@pytest.mark.parametrize(
    "name", sorted(n for n, s in SMALL.items() if not s.uses_fallback)
)
def test_translate_strategy_agrees_on_every_kernel(name):
    """The Figure 6 RA DAG route also runs in-kernel (Literal world
    tables mix tuple relations into a kernel plan — the coercion
    boundary must hold there too)."""
    assert_backends_agree(
        SMALL[name],
        ("explicit",)
        + tuple(
            (
                f"inline-translate[{kernel}]",
                lambda kernel=kernel: InlineBackend(
                    strategy="translate", kernel=kernel
                ),
            )
            for kernel in KERNEL_NAMES
        ),
    )


@pytest.mark.parametrize("seed", range(60))
def test_random_wsa_agrees_across_kernels(seed, monkeypatch):
    """Randomized WSA differential, kernel selected via REPRO_KERNEL."""
    world_set = random_world_set(seed)
    query = random_query(seed + 3, depth=3)
    monkeypatch.setenv("REPRO_KERNEL", "tuple")
    tuple_result = evaluate(query, world_set, name="Q", backend="inline")
    monkeypatch.setenv("REPRO_KERNEL", "columnar")
    columnar_result = evaluate(query, world_set, name="Q", backend="inline")
    assert tuple_result == columnar_result
    if have_numpy():
        monkeypatch.setenv("REPRO_KERNEL", "array")
        assert tuple_result == evaluate(
            query, world_set, name="Q", backend="inline"
        )
    assert columnar_result == evaluate(
        query, world_set, name="Q", backend="explicit"
    )


@pytest.mark.parametrize("kernel", list(KERNEL_NAMES))
def test_dangling_world_ids_decode_to_empty_worlds(kernel):
    """World ids carried by no row are worlds with empty relations —
    the decode must keep them on any kernel."""
    representation = InlinedRepresentation(
        {"R": Relation(("A", "$w"), [(1, 0)])},
        Relation(("$w",), [(0,), (1,), (2,)]),
        ("$w",),
    )
    backend = InlineBackend(representation, kernel=kernel)
    world_set = backend.to_world_set()
    # World 0 holds {1}; worlds 1 and 2 are empty and collapse to one.
    assert backend.world_count() == 2
    instances = {world["R"] for world in world_set.worlds}
    assert instances == {
        Relation(("A",), [(1,)]),
        Relation(("A",), []),
    }


def test_unknown_kernel_rejected():
    from repro.errors import EvaluationError

    with pytest.raises(EvaluationError, match="unknown kernel"):
        InlineBackend(kernel="vectorized")


def test_env_kernel_validation(monkeypatch):
    from repro.errors import EvaluationError
    from repro.relational import active_kernel

    monkeypatch.setenv("REPRO_KERNEL", "Tuple ")
    assert active_kernel() == "tuple"
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    with pytest.raises(EvaluationError, match="unknown kernel"):
        active_kernel()


# -- the array kernel without numpy --------------------------------------------------


def test_array_kernel_without_numpy_raises_cleanly(monkeypatch):
    """`REPRO_KERNEL=array` in a numpy-less environment must fail with
    an actionable error at kernel *selection* time, not deep inside a
    plan — and must not break the other kernels."""
    from repro.errors import EvaluationError
    from repro.relational import array_kernel, columnar, kernel_ops

    monkeypatch.setattr(array_kernel, "np", None)
    # Evict the memoized ops so selection re-runs the loader, as it
    # would in a fresh numpy-less interpreter.
    monkeypatch.delitem(columnar._KERNEL_OPS, "array", raising=False)
    with pytest.raises(EvaluationError, match="numpy"):
        kernel_ops("array")
    with pytest.raises(EvaluationError, match="numpy"):
        InlineBackend(kernel="array")
    # The registry still lists array (it is installed, just unloadable),
    # and the other kernels stay selectable.
    InlineBackend(kernel="columnar")
    InlineBackend(kernel="tuple")


def test_kernel_registry_lists_all_kernels():
    from repro.relational import kernel_names

    names = kernel_names()
    assert "columnar" in names and "tuple" in names and "array" in names
