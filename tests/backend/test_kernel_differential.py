"""Kernel equivalence: the columnar and tuple engines on every workload.

`REPRO_KERNEL=columnar|tuple` (or `InlineBackend(kernel=...)`) selects
how the inline backend's flat-table plans execute; it must never change
what they compute. This suite replays every datagen scenario and a
randomized world-set-algebra differential on both kernels (with the
explicit backend as the reference semantics), covers the translate
strategy's columnar route, and pins the dangling-world-id decode edge
(world ids with no rows encode empty worlds on either kernel).
"""

import pytest

from repro.backend import InlineBackend
from repro.backend.testing import assert_backends_agree
from repro.core import evaluate, rel
from repro.datagen import random_query, random_world_set, scenarios
from repro.inline.representation import InlinedRepresentation
from repro.relational import Relation

SMALL = {s.name: s for s in scenarios("small")}

KERNELS = (
    ("inline[columnar]", lambda: InlineBackend(kernel="columnar")),
    ("inline[tuple]", lambda: InlineBackend(kernel="tuple")),
)


@pytest.mark.parametrize("name", sorted(SMALL))
def test_kernels_agree_with_explicit_on_every_scenario(name):
    assert_backends_agree(SMALL[name], ("explicit",) + KERNELS)


@pytest.mark.parametrize(
    "name", sorted(n for n, s in SMALL.items() if not s.uses_fallback)
)
def test_translate_strategy_agrees_on_both_kernels(name):
    """The Figure 6 RA DAG route also runs columnar (Literal world
    tables mix tuple relations into a columnar plan — the coercion
    boundary must hold there too)."""
    assert_backends_agree(
        SMALL[name],
        (
            "explicit",
            (
                "inline-translate[columnar]",
                lambda: InlineBackend(strategy="translate", kernel="columnar"),
            ),
            (
                "inline-translate[tuple]",
                lambda: InlineBackend(strategy="translate", kernel="tuple"),
            ),
        ),
    )


@pytest.mark.parametrize("seed", range(60))
def test_random_wsa_agrees_across_kernels(seed, monkeypatch):
    """Randomized WSA differential, kernel selected via REPRO_KERNEL."""
    world_set = random_world_set(seed)
    query = random_query(seed + 3, depth=3)
    monkeypatch.setenv("REPRO_KERNEL", "tuple")
    tuple_result = evaluate(query, world_set, name="Q", backend="inline")
    monkeypatch.setenv("REPRO_KERNEL", "columnar")
    columnar_result = evaluate(query, world_set, name="Q", backend="inline")
    assert tuple_result == columnar_result
    assert columnar_result == evaluate(
        query, world_set, name="Q", backend="explicit"
    )


@pytest.mark.parametrize("kernel", ["columnar", "tuple"])
def test_dangling_world_ids_decode_to_empty_worlds(kernel):
    """World ids carried by no row are worlds with empty relations —
    the decode must keep them on either kernel."""
    representation = InlinedRepresentation(
        {"R": Relation(("A", "$w"), [(1, 0)])},
        Relation(("$w",), [(0,), (1,), (2,)]),
        ("$w",),
    )
    backend = InlineBackend(representation, kernel=kernel)
    world_set = backend.to_world_set()
    # World 0 holds {1}; worlds 1 and 2 are empty and collapse to one.
    assert backend.world_count() == 2
    instances = {world["R"] for world in world_set.worlds}
    assert instances == {
        Relation(("A",), [(1,)]),
        Relation(("A",), []),
    }


def test_unknown_kernel_rejected():
    from repro.errors import EvaluationError

    with pytest.raises(EvaluationError, match="unknown kernel"):
        InlineBackend(kernel="vectorized")


def test_env_kernel_validation(monkeypatch):
    from repro.errors import EvaluationError
    from repro.relational import active_kernel

    monkeypatch.setenv("REPRO_KERNEL", "Tuple ")
    assert active_kernel() == "tuple"
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    with pytest.raises(EvaluationError, match="unknown kernel"):
        active_kernel()
