"""Property-based differential suite for the widened fragment.

ISSUE 3 moved SQL aggregation, ``[not] in`` / ``[not] exists``
condition subqueries, scalar aggregate subqueries and
``group worlds by ⟨subquery⟩`` from the explicit fallback onto the
inlined representation. This suite holds all of that to the Figure 3
reference semantics: randomized scripts run on the explicit backend,
the inline physical backend, the Figure 6 translate backend and the
tuple kernel, asserting identical answer sets, world counts and decoded
world-sets — and that none of them routed through the fallback.

Cases are generated deterministically from a seed so failures replay.
"""

from __future__ import annotations

import random

import pytest

from repro.backend import InlineBackend
from repro.backend.testing import assert_backends_agree, run_scenario
from repro.datagen import Scenario
from repro.relational import Relation
from repro.relational.array_kernel import have_numpy

BACKENDS = (
    "explicit",
    "inline",
    "inline-translate",
    ("inline-tuple", lambda: InlineBackend(kernel="tuple")),
) + (
    (("inline-array", lambda: InlineBackend(kernel="array")),)
    if have_numpy()
    else ()
)


def _relations(rng: random.Random) -> tuple[tuple[str, Relation], ...]:
    """Small R(A, B, C) and S(B, D) with overlapping value domains."""
    r_rows = {
        (
            rng.randrange(3),
            rng.randrange(4),
            rng.randrange(1, 5) * 10,
        )
        for _ in range(rng.randrange(3, 8))
    }
    s_rows = {
        (rng.randrange(4), rng.randrange(1, 5) * 10)
        for _ in range(rng.randrange(2, 6))
    }
    return (
        ("R", Relation(("A", "B", "C"), r_rows)),
        ("S", Relation(("B", "D"), s_rows)),
    )


def _aggregation_case(rng: random.Random, index: int) -> Scenario:
    closing = rng.choice(["", "possible ", "certain "])
    aggs = rng.sample(
        ["count(B) as CB", "count(*) as N", "sum(C) as SC", "min(C) as MN",
         "max(B) as MX", "avg(C) as AV"],
        k=rng.randrange(1, 3),
    )
    group = rng.choice([(), ("A",), ("A", "B")])
    columns = ", ".join(list(group) + aggs)
    where = rng.choice(["", "where B + 1 > 1 ", "where C > 20 "])
    group_clause = f"group by {', '.join(group)} " if group else ""
    choice = rng.choice(["", "choice of A ", "choice of B "])
    query = (
        f"select {closing}{columns} from R {where}{group_clause}{choice};"
    )
    return Scenario(
        name=f"agg_{index}",
        relations=_relations(rng),
        query=query,
        approx_worlds=8,
    )


def _membership_case(rng: random.Random, index: int) -> Scenario:
    negated = rng.choice(["", "not "])
    closing = rng.choice(["possible ", "certain ", ""])
    splitting = rng.random() < 0.5
    inner_where = rng.choice(["", " where D > 20"])
    sub = (
        f"select B from S{inner_where} choice of B"
        if splitting
        else f"select B from S{inner_where}"
    )
    query = (
        f"select {closing}A, B from R where B {negated}in ({sub});"
    )
    return Scenario(
        name=f"in_{index}",
        relations=_relations(rng),
        query=query,
        approx_worlds=8,
    )


def _exists_case(rng: random.Random, index: int) -> Scenario:
    negated = rng.choice(["", "not "])
    correlation = rng.choice(
        ["S.B = R1.B", "S.B = R1.B and S.D > 10", "S.D > R1.C"]
    )
    query = (
        f"select A, C from R R1 where {negated}exists "
        f"(select * from S where {correlation});"
    )
    return Scenario(
        name=f"exists_{index}",
        relations=_relations(rng),
        query=query,
        approx_worlds=1,
    )


def _scalar_case(rng: random.Random, index: int) -> Scenario:
    function = rng.choice(["count(*)", "sum(D)", "count(D)", "min(D)", "max(D)"])
    threshold = rng.randrange(0, 4) * 10
    correlated = rng.random() < 0.7
    inner = (
        f"select {function} from S where S.B = R1.B"
        if correlated
        else f"select {function} from S"
    )
    op = rng.choice([">", ">=", "<", "="])
    # A world-splitting outer plan is the regression shape: the pad-join
    # decorrelation must reference (and evaluate) it exactly once, or
    # the two branches pair their independent world splits quadratically.
    outer = rng.choice(
        ["R R1", "(select * from R choice of A) as R1"]
    )
    query = f"select A, B from {outer} where ({inner}) {op} {threshold};"
    return Scenario(
        name=f"scalar_{index}",
        relations=_relations(rng),
        query=query,
        approx_worlds=4,
    )


def _keyed_grouping_case(rng: random.Random, index: int) -> Scenario:
    closing = rng.choice(["possible", "certain"])
    key = rng.choice(["select C from Rw", "select B from Rw where C > 20"])
    query = f"select {closing} B from Rw group worlds by ({key});"
    return Scenario(
        name=f"keyed_{index}",
        relations=_relations(rng),
        script="Rw <- select * from R choice of A;",
        query=query,
        approx_worlds=4,
    )


def _script_case(rng: random.Random, index: int) -> Scenario:
    """Aggregation over a state split by earlier statements."""
    query = rng.choice(
        [
            "select certain count(B) as N from Rw;",
            "select possible A, sum(C) as SC from Rw group by A;",
            "select A, count(*) as N from Rw where B in "
            "(select B from S) group by A;",
        ]
    )
    return Scenario(
        name=f"script_{index}",
        relations=_relations(rng),
        script="Rw <- select * from R choice of B;",
        query=query,
        approx_worlds=5,
    )


def _cases() -> list[Scenario]:
    rng = random.Random(20260730)
    cases: list[Scenario] = []
    for index in range(6):
        cases.append(_aggregation_case(random.Random(rng.random()), index))
        cases.append(_membership_case(random.Random(rng.random()), index))
        cases.append(_exists_case(random.Random(rng.random()), index))
        cases.append(_scalar_case(random.Random(rng.random()), index))
    for index in range(4):
        cases.append(_keyed_grouping_case(random.Random(rng.random()), index))
        cases.append(_script_case(random.Random(rng.random()), index))
    return cases


CASES = _cases()


@pytest.mark.parametrize("scenario", CASES, ids=lambda s: s.name)
def test_backends_and_kernels_agree(scenario):
    assert_backends_agree(scenario, BACKENDS)


@pytest.mark.parametrize("scenario", CASES, ids=lambda s: s.name)
def test_no_generated_statement_falls_back(scenario):
    """Every generated statement stays on the inlined representation."""
    session, _ = run_scenario(scenario, "inline")
    assert not list(session.backend.fallback_events)
