"""Randomized repair-by-key differential suite (ISSUE 8).

``repair by key`` now mints one *factored* per-group world-id column
per violating key group instead of one joint id over the repair
product. This suite generates seeded random scripts — a repair, a few
DML statements (some subquery-bearing) against the repaired relation,
then a certain/possible/aggregation query — and replays each of them
across the explicit backend and the inline backend in every
kernel × strategy combination. The factored encoding must be
answer-for-answer and world-count-for-world-count identical to the
joint enumeration the explicit engine performs.

A bounded fault sweep (reusing :mod:`repro.testing.faults`) then
crashes the generated scripts mid-statement on the inline backends:
the factored commit paths must keep the same crash-consistency
contract as the joint ones — a fault at any kernel-op boundary leaves
the pre-statement state, bit for bit.
"""

import random

import pytest

from repro.backend import InlineBackend
from repro.backend.testing import assert_backends_agree, fuzz_range
from repro.datagen import Scenario
from repro.errors import EvaluationError
from repro.isql.parser import parse_script
from repro.isql.session import ISQLSession
from repro.relational.array_kernel import have_numpy
from repro.relational.relation import Relation
from repro.testing import InjectedFault, count_ops, inject_fault, sweep_points

#: Every registered kernel; "array" joins when numpy is importable.
KERNEL_NAMES = ("columnar", "tuple") + (("array",) if have_numpy() else ())

#: (label, backend-or-factory): explicit plus kernels × strategies.
BACKENDS = (
    (("explicit", "explicit"),)
    + tuple(
        (f"inline[{kernel}]", lambda kernel=kernel: InlineBackend(kernel=kernel))
        for kernel in KERNEL_NAMES
    )
    + tuple(
        (
            f"inline-translate[{kernel}]",
            lambda kernel=kernel: InlineBackend(
                strategy="translate", kernel=kernel
            ),
        )
        for kernel in KERNEL_NAMES
    )
)

#: Inline-only backends for the fault sweep (the explicit engine's
#: crash consistency is covered by the scenario fault suite).
INLINE_BACKENDS = tuple(b for b in BACKENDS if b[0] != "explicit")

SEEDS = tuple(fuzz_range(8))

CITIES = tuple(f"C{i}" for i in range(5))


def make_scenario(seed: int) -> Scenario:
    """A seeded random repair + DML + query scenario.

    ≤ 3 violating key groups of ≤ 3 candidates each keep the repair
    under 3³ = 27 worlds, so the explicit side stays cheap while the
    inline side mints one id factor per group.
    """
    rng = random.Random(seed * 7919 + 11)
    rows: list[tuple] = []
    n_people = rng.randrange(5, 9)
    n_violations = rng.randrange(1, 4)
    for person in range(n_people):
        key = 100 + person
        city, amount = rng.choice(CITIES), rng.randrange(1, 6) * 10
        rows.append((key, city, amount))
        if person < n_violations:
            for _ in range(rng.randrange(1, 3)):
                # The conflicting candidate must differ, or set
                # semantics would collapse it and the violation vanish.
                conflict = (key, rng.choice(CITIES), rng.randrange(1, 6) * 10)
                while conflict in rows:
                    conflict = (key, rng.choice(CITIES), rng.randrange(1, 6) * 10)
                rows.append(conflict)
    lookup = Relation(
        ("T",), [(city,) for city in rng.sample(CITIES, rng.randrange(1, 4))]
    )

    statements = ["Clean <- select * from R repair by key K;"]
    fresh_key = 900
    for _ in range(rng.randrange(1, 4)):
        kind = rng.choice(("update", "update_subquery", "delete", "insert"))
        if kind == "update":
            statements.append(
                f"update Clean set B = {rng.randrange(1, 6) * 10} "
                f"where A = '{rng.choice(CITIES)}';"
            )
        elif kind == "update_subquery":
            statements.append(
                "update Clean set B = 0 "
                "where A in (select T from Lookup);"
            )
        elif kind == "delete":
            statements.append(
                f"delete from Clean where B > {rng.randrange(2, 6) * 10};"
            )
        else:
            statements.append(
                f"insert into Clean values "
                f"({fresh_key}, '{rng.choice(CITIES)}', "
                f"{rng.randrange(1, 6) * 10});"
            )
            fresh_key += 1

    query = (
        "select certain K, A from Clean;",
        "select possible K, B from Clean;",
        # A correlated scalar aggregate over the factored relation.
        "select possible K from Clean as C "
        "where (select sum(B) from Clean where K = C.K) >= 40;",
    )[seed % 3]

    return Scenario(
        name=f"repair_random_{seed}",
        relations=(("R", Relation(("K", "A", "B"), rows)), ("Lookup", lookup)),
        keys=(("Clean", ("K",)),),
        script="".join(statements),
        query=query,
        approx_worlds=27,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_random_repair_scripts_agree_across_backends(seed):
    """Factored ≡ joint: every generated script answers identically on
    the explicit enumeration and on all inline kernel × strategy
    combinations (answers, result worlds, and session worlds)."""
    assert_backends_agree(make_scenario(seed), backends=BACKENDS)


@pytest.mark.parametrize("seed", SEEDS[:2])
@pytest.mark.parametrize(
    "label,backend", INLINE_BACKENDS, ids=[b[0] for b in INLINE_BACKENDS]
)
def test_random_repair_scripts_fault_sweep(label, backend, seed):
    """A fault at a swept kernel-op boundary inside any statement of a
    generated repair script leaves the pre-statement state — the
    factored mint/commit paths are as crash-consistent as the joint
    ones — and the statement then replays cleanly."""
    scenario = make_scenario(seed)
    session = ISQLSession(backend=backend())
    for name, relation in scenario.relations:
        session.register(name, relation)
    for relation, attributes in scenario.keys:
        session.declare_key(relation, attributes)
    for statement in parse_script(scenario.script):
        before = session.world_set
        mark = session.savepoint()
        total = count_ops(lambda: session.execute_statement(statement))
        session.rollback_to(mark)
        session.release(mark)
        for at in sweep_points(total, 2):
            with inject_fault(at) as counter:
                with pytest.raises(EvaluationError) as info:
                    session.execute_statement(statement)
                assert isinstance(info.value.__cause__, InjectedFault)
                assert counter.fired
            assert session.world_set == before, (
                f"{label}/seed {seed}: fault at op {at}/{total} "
                "left a torn state"
            )
        session.execute_statement(statement)
    session.query(scenario.query)
