"""Cache on ≡ cache off, differentially, on every backend (PR 10).

The statement cache is allowed to change *cost* only. This suite holds
cache-on sessions to observable equivalence with cache-off sessions —
identical answers, routes, and final world-sets — across every
scripted datagen scenario and a randomized DML/fuzz sweep, on the
explicit backend and the inline backend in every kernel × strategy
combination. The transactional corners ride along: savepoint rollback
(the memo must serve the *restored* state's entries), atomic-script
abort, fault-injection replay on a warm cache, and ``pin_snapshot()``
readers (a pinned reader must keep hitting its own snapshot's
versions while a writer commits past it).
"""

from __future__ import annotations

import random

import pytest

from repro.backend import InlineBackend
from repro.backend.testing import fuzz_range
from repro.datagen import Scenario, scenarios
from repro.errors import EvaluationError, ReproError
from repro.isql import ISQLSession
from repro.relational import Relation
from repro.relational.array_kernel import have_numpy
from repro.service import SessionPool
from repro.testing import InjectedFault, count_ops, inject_fault, sweep_points

KERNEL_NAMES = ("columnar", "tuple") + (("array",) if have_numpy() else ())

#: (label, factory): explicit plus kernels × strategies — the cache
#: flag is threaded per replay, so each factory is cache-agnostic.
BACKENDS = (
    (("explicit", lambda: "explicit"),)
    + tuple(
        (f"inline[{kernel}]", lambda kernel=kernel: InlineBackend(kernel=kernel))
        for kernel in KERNEL_NAMES
    )
    + tuple(
        (
            f"inline-translate[{kernel}]",
            lambda kernel=kernel: InlineBackend(
                strategy="translate", kernel=kernel
            ),
        )
        for kernel in KERNEL_NAMES
    )
)

SCRIPTED = {s.name: s for s in scenarios("small") if s.script}

_backend_params = pytest.mark.parametrize(
    "label,backend", BACKENDS, ids=[b[0] for b in BACKENDS]
)


def _fresh(scenario: Scenario, backend, cache: bool) -> ISQLSession:
    session = ISQLSession(backend=backend(), cache=cache)
    for name, relation in scenario.relations:
        session.register(name, relation)
    for relation, attributes in scenario.keys:
        session.declare_key(relation, attributes)
    return session


def _replay(scenario: Scenario, backend, cache: bool):
    """Script, then the query twice (the second run is the hit path)."""
    session = _fresh(scenario, backend, cache)
    results = session.run(scenario.script) if scenario.script else []
    first = session.query(scenario.query)
    second = session.query(scenario.query)
    return session, results, first, second


def _assert_equivalent(scenario_name: str, label: str, on, off) -> None:
    on_session, on_results, on_first, on_second = on
    off_session, off_results, off_first, off_second = off
    context = f"{scenario_name} on {label}"
    assert [(r.kind, r.applied, r.route) for r in on_results] == [
        (r.kind, r.applied, r.route) for r in off_results
    ], f"{context}: statement kinds/flags/routes diverge"
    assert on_first.answers() == off_first.answers(), (
        f"{context}: first answers diverge"
    )
    assert on_second.answers() == on_first.answers(), (
        f"{context}: cached re-run changed the answer"
    )
    assert off_second.answers() == off_first.answers()
    assert on_session.world_count() == off_session.world_count(), context
    assert on_session.world_set == off_session.world_set, (
        f"{context}: final world-sets diverge"
    )
    assert list(getattr(on_session.backend, "fallback_events", ())) == list(
        getattr(off_session.backend, "fallback_events", ())
    ), f"{context}: fallback routes diverge"


@pytest.mark.parametrize("name", sorted(SCRIPTED))
@_backend_params
def test_scripted_scenarios_cache_on_equals_off(label, backend, name):
    scenario = SCRIPTED[name]
    on = _replay(scenario, backend, cache=True)
    off = _replay(scenario, backend, cache=False)
    _assert_equivalent(name, label, on, off)


# -- randomized DML/fuzz scripts -----------------------------------------------------

CONDITIONS = (
    "V = 1",
    "W > 20",
    "K != 2 and V = 0",
    "V = 1 or W >= 30",
    "K + V > 2",
)

SET_CLAUSES = ("W = W + 1", "V = 3", "W = K * 10", "K = 1")


def _fuzz_case(rng: random.Random, index: int) -> Scenario:
    rows = {
        (k, rng.randrange(3), rng.randrange(1, 5) * 10)
        for k in range(rng.randrange(3, 7))
    }
    statements = ["Split <- select * from T choice of V;"]
    for _ in range(rng.randrange(2, 7)):
        target = rng.choice(("Split", "Split", "T"))
        roll = rng.random()
        if roll < 0.25:
            values = f"{rng.randrange(9)}, {rng.randrange(3)}, {rng.randrange(1, 5) * 10}"
            statements.append(f"insert into {target} values ({values});")
        elif roll < 0.6:
            statements.append(
                f"update {target} set {rng.choice(SET_CLAUSES)} "
                f"where {rng.choice(CONDITIONS)};"
            )
        else:
            statements.append(
                f"delete from {target} where {rng.choice(CONDITIONS)};"
            )
        if rng.random() < 0.4:
            # Interleave reads so later DML invalidates warm memo
            # entries mid-script — the precision path under test.
            statements.append(f"select possible K, W from {target};")
    return Scenario(
        name=f"cache_fuzz_{index}",
        relations=(("T", Relation(("K", "V", "W"), rows)),),
        keys=(("Split", ("K",)),) if rng.random() < 0.5 else (),
        script="".join(statements),
        query=f"select {rng.choice(('possible', 'certain'))} K, V, W from Split;",
        approx_worlds=4,
    )


@pytest.mark.parametrize("index", fuzz_range(32))
def test_fuzzed_scripts_cache_on_equals_off(index):
    rng = random.Random(10_000 + index)
    scenario = _fuzz_case(rng, index)
    for label, backend in BACKENDS:
        on = _replay(scenario, backend, cache=True)
        off = _replay(scenario, backend, cache=False)
        _assert_equivalent(scenario.name, label, on, off)


# -- transactional corners -----------------------------------------------------------


def _rollback_trace(backend, cache: bool):
    """Warm the cache, mutate under a savepoint, roll back, re-query."""
    session = ISQLSession(backend=backend(), cache=cache)
    session.register("T", Relation(("K", "V"), [(1, 10), (2, 20)]))
    trace = [session.query("select possible K, V from T;").answers()]
    mark = session.savepoint()
    session.run("insert into T values (3, 30);update T set V = 0 where K = 1;")
    trace.append(session.query("select possible K, V from T;").answers())
    session.rollback_to(mark)
    session.release(mark)
    trace.append(session.query("select possible K, V from T;").answers())
    session.run("delete from T where K = 2;")
    trace.append(session.query("select possible K, V from T;").answers())
    return session, trace


@_backend_params
def test_savepoint_rollback_cache_on_equals_off(label, backend):
    on_session, on_trace = _rollback_trace(backend, cache=True)
    off_session, off_trace = _rollback_trace(backend, cache=False)
    assert on_trace == off_trace, label
    assert on_session.world_set == off_session.world_set, label


def _atomic_abort_trace(backend, cache: bool):
    session = ISQLSession(backend=backend(), cache=cache)
    session.register("T", Relation(("K", "V"), [(1, 10), (2, 20)]))
    session.query("select possible K from T;")  # warm the cache
    with pytest.raises(ReproError):
        session.run(
            "insert into T values (3, 30);select possible X from Nope;",
            atomic=True,
        )
    return session, session.query("select possible K, V from T;").answers()


@_backend_params
def test_atomic_abort_cache_on_equals_off(label, backend):
    on_session, on_answers = _atomic_abort_trace(backend, cache=True)
    off_session, off_answers = _atomic_abort_trace(backend, cache=False)
    assert on_answers == off_answers, label
    assert on_session.world_set == off_session.world_set, label
    # The aborted insert must not survive anywhere, including the memo.
    assert not any((3, 30) in answer.rows for answer in on_answers)


@_backend_params
def test_fault_replay_on_a_warm_cache(label, backend):
    """A fault mid-script on a cache-on session leaves consistent state,
    and the replay — now against a *warm* cache — reaches the same end
    state as a never-faulted cache-off run."""
    scenario = SCRIPTED[sorted(SCRIPTED)[0]]
    reference = _fresh(scenario, backend, cache=False)
    reference.run(scenario.script)
    probe = _fresh(scenario, backend, cache=False)
    total = count_ops(lambda: probe.run_script(scenario.script))
    if total == 0:
        pytest.skip("script crosses no kernel-op boundary")
    for at in sweep_points(total, 3):
        session = _fresh(scenario, backend, cache=True)
        before = session.world_set
        with inject_fault(at) as counter:
            with pytest.raises(EvaluationError) as info:
                session.run_script(scenario.script, atomic=True)
            assert isinstance(info.value.__cause__, InjectedFault)
            assert counter.fired, (label, at)
        assert session.world_set == before, (
            f"{label}: fault at op {at}/{total} tore cache-on state"
        )
        session.run_script(scenario.script, atomic=True)
        assert session.world_set == reference.world_set, (
            f"{label}: warm-cache replay after fault diverged"
        )
        assert session.query(scenario.query).answers() == reference.query(
            scenario.query
        ).answers()


# -- pinned snapshot readers ---------------------------------------------------------


@pytest.mark.parametrize("cache", [True, False], ids=["cache-on", "cache-off"])
def test_pinned_reader_keeps_its_snapshot_versions(cache):
    """A pinned reader re-running its query must keep answering from
    its pinned snapshot while a writer commits DML past it — the memo
    keys on the *reader's* table versions, which ride in the snapshot."""
    seed = ISQLSession(backend=InlineBackend())
    seed.register("T", Relation(("K", "V"), [(1, 10), (2, 20)]))
    with SessionPool(seed, size=2, cache=cache) as pool:
        reader = pool.acquire()
        reader.pin_snapshot()
        query = "select possible K, V from T;"
        pinned = reader.execute(query).fetchall()
        writer = pool.acquire()
        writer.execute("insert into T values (3, 30);")
        writer.commit()
        pool.release(writer)
        # Ten re-reads on the pinned snapshot: every one must serve the
        # pinned state, no matter how warm the shared cache gets.
        for _ in range(10):
            assert reader.execute(query).fetchall() == pinned
        reader.unpin_snapshot()
        fresh = reader.execute(query).fetchall()
        assert sorted(fresh) == sorted(pinned + [(3, 30)])
        pool.release(reader)


@pytest.mark.parametrize("cache", [True, False], ids=["cache-on", "cache-off"])
def test_concurrent_connections_agree_after_commit(cache):
    seed = ISQLSession(backend=InlineBackend())
    seed.register("T", Relation(("K",), [(1,), (2,)]))
    with SessionPool(seed, size=2, cache=cache) as pool:
        with pool.connection() as writer:
            writer.execute("delete from T where K = 1;")
        with pool.connection() as observer:
            rows = observer.execute("select certain K from T;").fetchall()
        assert rows == [(2,)]
