"""Backend equivalence: explicit vs inline on every datagen workload.

This is the PR's acceptance property: ``InlineBackend`` (both the
physical-operator and the Figure 6 translation strategies) returns the
same answer world-sets as ``ExplicitBackend`` on every scenario of
:func:`repro.datagen.scenarios` — and, since the compiler widened to
SQL aggregation, condition subqueries and subquery-keyed world
grouping, every scenario statement runs ``route=direct`` on the
inlined representation (no scenario exercises the explicit fallback
anymore; the residue is covered by dedicated unit tests).
"""

import pytest

from repro.backend.testing import assert_backends_agree, run_scenario
from repro.datagen import scenarios

SMALL = {s.name: s for s in scenarios("small")}


@pytest.mark.parametrize("name", sorted(SMALL))
def test_inline_agrees_with_explicit(name):
    assert_backends_agree(SMALL[name], ("explicit", "inline"))


@pytest.mark.parametrize("name", sorted(SMALL))
def test_translate_strategy_agrees_with_explicit(name):
    """The literal Figure 6 route, now over the whole scenario suite."""
    assert_backends_agree(SMALL[name], ("explicit", "inline-translate"))


@pytest.mark.parametrize("name", sorted(SMALL))
def test_no_scenario_statement_falls_back(name):
    """ISSUE 3 acceptance: no benchmark scenario statement falls back.

    The aggregation-heavy ``tpch_what_if`` and the ``group worlds by
    ⟨subquery⟩`` acquisition variant were the last fallback scenarios;
    both (and everything else) must now evaluate flat. The XL
    benchmark variants reuse these exact statement shapes, and
    ``benchmarks/bench_backends.py`` asserts their routes at bench
    time.
    """
    assert not SMALL[name].uses_fallback
    session, _ = run_scenario(SMALL[name], "inline")
    assert not list(session.backend.fallback_events)


@pytest.mark.parametrize("name", sorted(SMALL))
def test_scenarios_have_plausible_world_counts(name):
    scenario = SMALL[name]
    session, _ = run_scenario(scenario, "inline")
    assert 1 <= session.world_count() <= scenario.approx_worlds
