"""Backend equivalence: explicit vs inline on every datagen workload.

This is the PR's acceptance property: ``InlineBackend`` (both the
physical-operator and the Figure 6 translation strategies) returns the
same answer world-sets as ``ExplicitBackend`` on every scenario of
:func:`repro.datagen.scenarios` — including the scenarios that force
the inline backend through its explicit fallback (aggregation,
condition subqueries, group-worlds-by over a subquery).
"""

import pytest

from repro.backend.testing import assert_backends_agree, run_scenario
from repro.datagen import scenarios

SMALL = {s.name: s for s in scenarios("small")}


@pytest.mark.parametrize("name", sorted(SMALL))
def test_inline_agrees_with_explicit(name):
    assert_backends_agree(SMALL[name], ("explicit", "inline"))


@pytest.mark.parametrize(
    "name", sorted(n for n, s in SMALL.items() if not s.uses_fallback)
)
def test_translate_strategy_agrees_with_explicit(name):
    """The literal Figure 6 route, where the fragment permits it."""
    assert_backends_agree(SMALL[name], ("explicit", "inline-translate"))


@pytest.mark.parametrize("name", sorted(SMALL))
def test_scenarios_have_plausible_world_counts(name):
    scenario = SMALL[name]
    session, _ = run_scenario(scenario, "inline")
    assert 1 <= session.world_count() <= scenario.approx_worlds
