"""Crash consistency under injected kernel-op faults, on every backend.

The differential sweep behind the session's transactional claims:
:mod:`repro.testing.faults` crashes evaluation at swept kernel-op
boundaries — mid-statement, after intermediate relations exist but
before any commit — across the datagen scenarios, on the explicit
backend and the inline backend in every kernel × strategy combination.
After every injected crash the suite asserts

* the fault surfaces as :class:`~repro.errors.EvaluationError` with the
  :class:`~repro.testing.InjectedFault` chained as ``__cause__`` (the
  exception-hygiene net: raw non-``ReproError`` exceptions never
  escape),
* the session state is *identical* to the oracle: the pre-statement
  state for statement-at-a-time execution, the pre-script state for
  ``atomic=True`` scripts, and some committed statement-prefix state
  for default ``run_script`` (whose batches commit their applied
  prefix),
* the session stays usable — the interrupted work replays cleanly to
  the same end state a never-faulted run reaches.

Per-PR the sweep samples a few injection points per statement
(:func:`~repro.testing.sweep_points`); ``REPRO_FAULT_SWEEP=full``
(the nightly configuration) sweeps every op boundary.
"""

import os

import pytest

from repro.backend import InlineBackend
from repro.backend.testing import run_scenario
from repro.datagen import scenarios
from repro.errors import EvaluationError
from repro.isql.parser import parse_script
from repro.isql.session import ISQLSession
from repro.relational.array_kernel import have_numpy
from repro.testing import InjectedFault, count_ops, inject_fault, sweep_points

#: Every registered kernel; "array" joins when numpy is importable.
KERNEL_NAMES = ("columnar", "tuple") + (("array",) if have_numpy() else ())

#: (label, backend-or-factory): explicit plus kernels × strategies.
BACKENDS = (
    (("explicit", "explicit"),)
    + tuple(
        (f"inline[{kernel}]", lambda kernel=kernel: InlineBackend(kernel=kernel))
        for kernel in KERNEL_NAMES
    )
    + tuple(
        (
            f"inline-translate[{kernel}]",
            lambda kernel=kernel: InlineBackend(
                strategy="translate", kernel=kernel
            ),
        )
        for kernel in KERNEL_NAMES
    )
)

SCRIPTED = {s.name: s for s in scenarios("small") if s.script}


def _limit(bounded: int) -> int | None:
    """Injection points per sweep: *bounded* per-PR, all of them nightly."""
    return None if os.environ.get("REPRO_FAULT_SWEEP") == "full" else bounded


def _fresh(scenario, backend) -> ISQLSession:
    """A new session with the scenario's relations and keys, script unrun.

    The statement cache is off: the sweep dry-counts a statement's
    kernel ops, rolls back, and replays with a fault injected at each
    op index — a cached replay would legitimately skip those ops (the
    rolled-back representation carries its old table versions, so the
    result memo re-hits) and the injection points would never fire.
    Cache-on fault replay is covered by the cache differential suite
    (``test_cache_differential.py``).
    """
    resolved = backend() if callable(backend) else backend
    session = ISQLSession(backend=resolved, cache=False)
    for name, relation in scenario.relations:
        session.register(name, relation)
    for relation, attributes in scenario.keys:
        session.declare_key(relation, attributes)
    return session


def _parametrize(test):
    return pytest.mark.parametrize("name", sorted(SCRIPTED))(
        pytest.mark.parametrize("label,backend", BACKENDS, ids=[b[0] for b in BACKENDS])(
            test
        )
    )


@_parametrize
def test_statement_sweep_leaves_prestatement_state(label, backend, name):
    """A fault at any kernel op inside statement N leaves the session at
    the state committed after statement N-1, bit for bit, and the
    statement then replays cleanly — swept statement by statement
    through the whole script."""
    scenario = SCRIPTED[name]
    session = _fresh(scenario, backend)
    for statement in parse_script(scenario.script):
        before = session.world_set
        before_views = dict(session.views)
        # Dry-count the statement's op boundaries, then undo it: the
        # savepoint machinery is both the tool and part of what is
        # under test here.
        mark = session.savepoint()
        total = count_ops(lambda: session.execute_statement(statement))
        session.rollback_to(mark)
        session.release(mark)
        for at in sweep_points(total, _limit(3)):
            with inject_fault(at) as counter:
                with pytest.raises(EvaluationError) as info:
                    session.execute_statement(statement)
                assert isinstance(info.value.__cause__, InjectedFault)
                assert counter.fired
            assert session.world_set == before, (
                f"{label}/{name}: fault at op {at}/{total} left a torn state"
            )
            assert session.views == before_views
        # The session is usable: the same statement now applies cleanly.
        session.execute_statement(statement)
    reference_session, reference_result = run_scenario(scenario, backend)
    assert session.query(scenario.query).answers() == reference_result.answers()
    assert session.world_set == reference_session.world_set


@_parametrize
def test_atomic_script_rolls_back_to_prescript_state(label, backend, name):
    """With ``atomic=True`` a fault anywhere in the script rolls the
    session back to the state before its first statement; the script
    then replays to the never-faulted end state."""
    scenario = SCRIPTED[name]
    reference_session, reference_result = run_scenario(scenario, backend)
    probe = _fresh(scenario, backend)
    total = count_ops(lambda: probe.run_script(scenario.script))
    if total == 0:
        pytest.skip("script crosses no kernel-op boundary (view-only)")
    for at in sweep_points(total, _limit(3)):
        session = _fresh(scenario, backend)
        before = session.world_set
        with inject_fault(at) as counter:
            with pytest.raises(EvaluationError) as info:
                session.run_script(scenario.script, atomic=True)
            assert isinstance(info.value.__cause__, InjectedFault)
            assert counter.fired
        assert session.world_set == before, (
            f"{label}/{name}: atomic rollback missed at op {at}/{total}"
        )
        session.run_script(scenario.script, atomic=True)
        assert session.world_set == reference_session.world_set
        assert session.query(scenario.query).answers() == reference_result.answers()


@_parametrize
def test_default_script_keeps_a_committed_statement_prefix(label, backend, name):
    """Without ``atomic``, a mid-script fault leaves exactly the state
    after some statement prefix — never a torn statement, even inside a
    coalesced DML batch (whose applied prefix commits)."""
    scenario = SCRIPTED[name]
    statements = parse_script(scenario.script)
    oracle = _fresh(scenario, backend)
    prefix_states = [oracle.world_set]
    for statement in statements:
        oracle.execute_statement(statement)
        prefix_states.append(oracle.world_set)
    probe = _fresh(scenario, backend)
    total = count_ops(lambda: probe.run_script(scenario.script))
    if total == 0:
        pytest.skip("script crosses no kernel-op boundary (view-only)")
    anchor = scenario.relations[0][0]
    for at in sweep_points(total, _limit(3)):
        session = _fresh(scenario, backend)
        with inject_fault(at):
            with pytest.raises(EvaluationError) as info:
                session.run_script(scenario.script)
            assert isinstance(info.value.__cause__, InjectedFault)
        state = session.world_set
        assert any(state == prefix for prefix in prefix_states), (
            f"{label}/{name}: state after fault at op {at}/{total} "
            "matches no committed statement prefix"
        )
        # Usable afterwards: the registered base relations still answer.
        session.query(f"select * from {anchor};")


@pytest.mark.parametrize("name", sorted(s.name for s in scenarios("small")))
@pytest.mark.parametrize(
    "label,backend", BACKENDS, ids=[b[0] for b in BACKENDS]
)
def test_query_sweep_leaves_state_untouched(label, backend, name):
    """Faults inside the final *query* (where view-only scripts like
    tpch_what_if do all their work): selects never commit, so any
    mid-evaluation crash must leave the session state identical and the
    retried query must produce the reference answers."""
    scenario = {s.name: s for s in scenarios("small")}[name]
    session = _fresh(scenario, backend)
    if scenario.script:
        session.run_script(scenario.script)
    before = session.world_set
    total = count_ops(lambda: session.query(scenario.query))
    reference = session.query(scenario.query).answers()
    for at in sweep_points(total, _limit(3)):
        with inject_fault(at) as counter:
            with pytest.raises(EvaluationError) as info:
                session.query(scenario.query)
            assert isinstance(info.value.__cause__, InjectedFault)
            assert counter.fired
        assert session.world_set == before, (
            f"{label}/{name}: query fault at op {at}/{total} mutated state"
        )
        assert session.query(scenario.query).answers() == reference
