"""core.semantics with backend="inline": encode → flat-eval → decode.

Randomized differential test of the world-set algebra semantics itself:
on seeded random queries and world-sets, the inline evaluation route
must reproduce the Figure 3 reference semantics exactly.
"""

import pytest

from repro.core import cert, choice_of, evaluate, poss, project, rel
from repro.datagen import random_query, random_world_set
from repro.errors import EvaluationError
from repro.worlds import World, WorldSet
from repro.relational import Relation


@pytest.mark.parametrize("seed", range(120))
def test_inline_semantics_matches_reference(seed):
    world_set = random_world_set(seed)
    query = random_query(seed + 1, depth=3)
    explicit = evaluate(query, world_set, name="Q", backend="explicit")
    inline = evaluate(query, world_set, name="Q", backend="inline")
    assert explicit == inline


@pytest.mark.parametrize("seed", range(40))
def test_inline_semantics_with_repair(seed):
    world_set = random_world_set(seed, max_worlds=2, max_rows=4)
    query = random_query(seed + 7, depth=3, allow_repair=True)
    explicit = evaluate(query, world_set, name="Q", max_worlds=2000)
    inline = evaluate(query, world_set, name="Q", max_worlds=2000, backend="inline")
    assert explicit == inline


def test_inline_semantics_on_figure2(flights_ws):
    query = cert(project("Arr", choice_of("Dep", rel("Flights"))))
    explicit = evaluate(query, flights_ws, name="Q")
    inline = evaluate(query, flights_ws, name="Q", backend="inline")
    assert explicit == inline
    answers = {world["Q"] for world in inline.worlds}
    assert answers == {Relation(("Arr",), [("ATL",)])}


def test_unknown_backend_rejected(flights_ws):
    with pytest.raises(EvaluationError, match="unknown semantics backend"):
        evaluate(rel("Flights"), flights_ws, backend="quantum")


def test_inline_semantics_on_empty_world_set():
    schema_sig = WorldSet.single(World.of({"R": Relation(("A",), [(1,)])})).signature
    empty = WorldSet.empty(schema_sig)
    explicit = evaluate(rel("R"), empty, name="Q")
    inline = evaluate(rel("R"), empty, name="Q", backend="inline")
    assert explicit == inline
    assert len(inline) == 0
