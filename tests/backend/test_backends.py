"""Unit behavior of the backend layer (catalog, DML, fallbacks, guards)."""

import pytest

from repro.backend import (
    Backend,
    ExplicitBackend,
    InlineBackend,
    create_backend,
)
from repro.errors import EvaluationError, SchemaError
from repro.inline import InlinedRepresentation
from repro.isql import ISQLSession, inline_route
from repro.relational import Relation


@pytest.fixture(params=["explicit", "inline", "inline-translate"])
def session(request, flights):
    s = ISQLSession(backend=request.param)
    s.register("Flights", flights)
    return s


class TestBackendSelection:
    def test_create_backend_by_name(self):
        assert isinstance(create_backend("explicit"), ExplicitBackend)
        assert isinstance(create_backend("inline"), InlineBackend)
        translate = create_backend("inline-translate")
        assert isinstance(translate, InlineBackend)
        assert translate.strategy == "translate"

    def test_create_backend_passthrough(self):
        backend = InlineBackend()
        assert create_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(EvaluationError, match="unknown backend"):
            ISQLSession(backend="quantum")
        with pytest.raises(EvaluationError, match="strategy"):
            InlineBackend(strategy="quantum")

    def test_kind_labels(self):
        assert ExplicitBackend.kind == "explicit"
        assert InlineBackend.kind == "inline"
        assert issubclass(InlineBackend, Backend)


class TestCatalogParity:
    def test_register_and_names(self, session):
        assert session.relation_names() == ("Flights",)
        assert session.world_count() == 1

    def test_register_duplicate_rejected(self, session, flights):
        with pytest.raises(SchemaError):
            session.register("Flights", flights)

    def test_register_after_split_reaches_every_world(self, session):
        session.execute("F <- select * from Flights choice of Dep;")
        session.register("Extra", Relation(("X",), [(1,)]))
        for world in session.world_set.worlds:
            assert world["Extra"].rows == {(1,)}

    def test_assignment_splits_session(self, session):
        session.execute("F <- select * from Flights choice of Dep;")
        assert session.world_count() == 3
        assert session.relation_names() == ("Flights", "F")

    def test_closed_assignment_over_split_state(self, session):
        session.execute("F <- select * from Flights choice of Dep;")
        session.execute("C <- select certain Arr from F;")
        assert session.world_count() == 3
        for world in session.world_set.worlds:
            assert world["C"].rows == {("ATL",)}


class TestInlineSpecifics:
    def test_state_is_an_inlined_representation(self, flights):
        s = ISQLSession(backend="inline")
        s.register("Flights", flights)
        s.execute("F <- select * from Flights choice of Dep;")
        representation = s.backend.representation
        assert isinstance(representation, InlinedRepresentation)
        assert representation.id_attrs  # worlds exist only as id columns
        assert representation.world_count() == 3

    def test_possible_certain_from_flat_tables(self, flights):
        s = ISQLSession(backend="inline")
        s.register("Flights", flights)
        result = s.query("select Arr from Flights choice of Dep;")
        assert result.possible().rows == {("BCN",), ("ATL",)}
        assert result.certain().rows == {("ATL",)}

    def test_world_set_decodes_on_demand(self, flights):
        s = ISQLSession(backend="inline")
        s.register("Flights", flights)
        result = s.query("select * from Flights choice of Dep;")
        assert result.world_count() == 3
        assert len(result.answers()) == 3

    def test_aggregation_runs_direct_on_flat_tables(self, flights):
        """Aggregation stays on the inlined representation (no fallback)."""
        s = ISQLSession(backend="inline")
        s.register("Flights", flights)
        result = s.query("select count(Arr) as N from Flights choice of Dep;")
        assert not s.backend.fallback_events
        assert result.possible().rows == {(2,), (1,)}
        assert result.certain().rows == set()

    def test_or_subqueries_run_direct(self, flights):
        """Condition subqueries under OR stay on the flat tables."""
        s = ISQLSession(backend="inline")
        s.register("Flights", flights)
        result = s.query(
            "select Arr from Flights where Arr = 'BCN' or "
            "Dep in (select Dep from Flights where Dep = 'PHL');"
        )
        assert not s.backend.fallback_events
        assert result.possible().rows == {("BCN",), ("ATL",)}

    def test_possible_certain_available_after_fallback(self, flights):
        """A fallback result must expose the same surface as a direct one."""
        s = ISQLSession(backend="inline")
        s.register("Flights", flights)
        # A non-column IN needle is part of the documented residue: it
        # still routes through the explicit engine.
        result = s.query(
            "select Arr from Flights where Arr = 'BCN' and "
            "'ATL' in (select Arr from Flights);"
        )
        assert s.backend.fallback_events
        assert result.possible().rows == {("BCN",)}
        assert result.certain().rows == {("BCN",)}

    def test_inline_route_classification(self, flights):
        schemas = {"Flights": ("Dep", "Arr")}
        assert inline_route(
            "select certain Arr from Flights choice of Dep;", schemas
        ) == "direct"
        # Aggregation and condition subqueries are now in the fragment …
        assert inline_route(
            "select count(Arr) from Flights;", schemas
        ) == "direct"
        assert inline_route(
            "select * from Flights where Dep in (select Dep from Flights);",
            schemas,
        ) == "direct"
        # Disjunctions over subqueries and non-aggregate scalar
        # subqueries joined the fragment with ISSUE 4 …
        assert inline_route(
            "select * from Flights where Arr = 'X' or "
            "Dep in (select Dep from Flights);",
            schemas,
        ) == "direct"
        assert inline_route(
            "select * from Flights where "
            "Arr = (select Arr from Flights where Dep = 'PHL');",
            schemas,
        ) == "direct"
        # … while the residue still falls back (non-column IN needle).
        assert inline_route(
            "select * from Flights where 'X' in (select Arr from Flights);",
            schemas,
        ) == "fallback"

    def test_fallback_events_are_bounded_and_cleared_on_close(self, flights):
        """Diagnostics must not grow without bound in long sessions."""
        from repro.backend.inline import FALLBACK_EVENT_LIMIT

        s = ISQLSession(backend="inline")
        s.register("Flights", flights)
        residue = (
            "select Arr from Flights where Arr = 'BCN' and "
            "'ATL' in (select Arr from Flights);"
        )
        for _ in range(FALLBACK_EVENT_LIMIT + 10):
            s.query(residue)
        assert len(s.backend.fallback_events) == FALLBACK_EVENT_LIMIT
        event = s.backend.fallback_events[-1]
        assert event.kind == "select" and event.clause == "where"
        s.close()
        assert not s.backend.fallback_events

    def test_fresh_ids_never_collide_across_statements(self, flights):
        s = ISQLSession(backend="inline")
        s.register("Flights", flights)
        s.execute("F <- select * from Flights choice of Dep;")
        s.execute("G <- select * from Flights choice of Dep;")
        assert s.world_count() == 9
        assert len(set(s.backend.representation.id_attrs)) == 2

    def test_max_worlds_guard(self):
        s = ISQLSession(max_worlds=3, backend="inline")
        s.register(
            "R", Relation(("A", "B"), [(i, j) for i in range(3) for j in range(2)])
        )
        with pytest.raises(EvaluationError, match="worlds"):
            s.execute("X <- select * from R repair by key A;")

    def test_initial_representation_is_one_empty_world(self):
        backend = InlineBackend()
        assert backend.world_count() == 1
        assert len(backend.to_world_set()) == 1


class TestDMLParity:
    @pytest.fixture(params=["explicit", "inline"])
    def keyed(self, request):
        s = ISQLSession(backend=request.param)
        s.register("F", Relation(("K", "V"), [(1, "a"), (2, "b")]))
        s.declare_key("F", ("K",))
        return s

    def test_insert_discarded_on_violation(self, keyed):
        assert not keyed.execute("insert into F values (1, 'c');")[0].applied
        assert keyed.world_set.the_world()["F"].rows == {(1, "a"), (2, "b")}

    def test_insert_update_delete_roundtrip(self, keyed):
        assert keyed.execute("insert into F values (3, 'c');")[0].applied
        assert keyed.execute("update F set V = 'z' where K = 3;")[0].applied
        keyed.execute("delete from F where V = 'z';")
        assert keyed.world_set.the_world()["F"].rows == {(1, "a"), (2, "b")}

    def test_update_discarded_on_violation(self, keyed):
        assert not keyed.execute("update F set K = 1 where K = 2;")[0].applied
        assert keyed.world_set.the_world()["F"].rows == {(1, "a"), (2, "b")}

    @pytest.mark.parametrize("backend", ["explicit", "inline"])
    def test_update_with_nested_subquery_expression(self, backend):
        """A scalar subquery inside set-clause arithmetic, both routes."""
        s = ISQLSession(backend=backend)
        s.register("T", Relation(("A", "B"), [(1, 5)]))
        s.register("S", Relation(("C",), [(10,)]))
        s.execute("update T set B = (select C from S) + 1 where A = 1;")
        assert s.world_set.the_world()["T"].rows == {(1, 11)}

    @pytest.mark.parametrize("backend", ["explicit", "inline"])
    def test_violation_in_one_world_discards_everywhere(self, backend):
        s = ISQLSession(backend=backend)
        s.register("R", Relation(("K", "V"), [(1, "a"), (1, "b"), (2, "c")]))
        s.execute("Rep <- select * from R repair by key K;")
        s.declare_key("Rep", ("K",))
        # (2, 'c') survives in every repair, so inserting a second K=2
        # row violates the key in *all* worlds; a fresh key is fine.
        assert not s.execute("insert into Rep values (2, 'x');")[0].applied
        assert s.execute("insert into Rep values (3, 'x');")[0].applied
        for world in s.world_set.worlds:
            assert (3, "x") in world["Rep"].rows
