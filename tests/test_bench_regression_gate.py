"""The CI benchmark-regression gate (benchmarks/check_regression.py).

CI compares the freshly generated BENCH_backends.json against the
committed baseline and fails on a >2× inline slowdown. The comparison
rules live in ``check()``; this pins them: infeasible handling, the
noise floor, missing scenarios, and the became-infeasible case.
"""

import importlib.util
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", check_regression)
_spec.loader.exec_module(check_regression)


def _payload(*rows):
    return {"entries": [dict(row) for row in rows]}


def _row(scenario, backend="inline", seconds=0.1, **extra):
    return {"scenario": scenario, "backend": backend, "seconds": seconds, **extra}


def test_within_threshold_passes():
    baseline = _payload(_row("trip", seconds=0.100))
    current = _payload(_row("trip", seconds=0.150))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_regression_past_threshold_fails():
    baseline = _payload(_row("trip", seconds=0.100))
    current = _payload(_row("trip", seconds=0.250))
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "trip" in problems[0]


def test_noise_floor_skips_tiny_timings():
    baseline = _payload(_row("trip", seconds=0.0005))
    current = _payload(_row("trip", seconds=0.0100))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_only_inline_rows_gate():
    baseline = _payload(_row("trip", backend="explicit", seconds=0.1))
    current = _payload(_row("trip", backend="explicit", seconds=1.0))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_missing_and_new_scenarios_are_skipped():
    baseline = _payload(_row("old_only", seconds=0.1))
    current = _payload(_row("new_only", seconds=9.9))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_becoming_infeasible_is_a_regression():
    baseline = _payload(_row("trip", seconds=0.1))
    current = _payload(_row("trip", seconds=None, infeasible=True))
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "infeasible" in problems[0]


def test_route_regression_direct_to_fallback_fails():
    """Re-routing a direct scenario through the explicit fallback is an
    architectural regression even when the seconds pass the threshold."""
    baseline = _payload(_row("tpch", seconds=0.100, route="direct"))
    current = _payload(
        _row(
            "tpch",
            seconds=0.110,
            route="fallback",
            fallback_reason="aggregation left the fragment",
        )
    )
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "direct → fallback" in problems[0]
    assert "aggregation" in problems[0]


def test_newly_direct_route_gates_on_seconds_like_the_rest():
    """A scenario that flipped fallback→direct is faster and passes; a
    genuine slowdown on it still fails like any other row."""
    baseline = _payload(_row("tpch", seconds=0.400, route="fallback"))
    improved = _payload(_row("tpch", seconds=0.050, route="direct"))
    assert check_regression.check(baseline, improved, 2.0, 0.002) == []
    slower = _payload(_row("tpch", seconds=1.000, route="direct"))
    problems = check_regression.check(baseline, slower, 2.0, 0.002)
    assert len(problems) == 1 and "tpch" in problems[0]


def test_rows_without_route_do_not_route_gate():
    """Old baselines predate route recording: absent routes never gate."""
    baseline = _payload(_row("trip", seconds=0.100))
    current = _payload(_row("trip", seconds=0.110, route="fallback"))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_baseline_infeasible_rows_do_not_gate():
    baseline = _payload(_row("xl", seconds=None, infeasible=True))
    current = _payload(_row("xl", seconds=4.0))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_cross_machine_rows_compare_normalized_not_raw():
    """A uniformly slower runner must not fail the gate: the inline /
    explicit ratio is unchanged even though raw seconds tripled."""
    baseline = _payload(
        _row("trip", seconds=0.100, python="3.11", platform="dev"),
        _row("trip", backend="explicit", seconds=1.000, python="3.11", platform="dev"),
    )
    current = _payload(
        _row("trip", seconds=0.300, python="3.12", platform="ci"),
        _row("trip", backend="explicit", seconds=3.000, python="3.12", platform="ci"),
    )
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_cross_machine_normalized_regression_fails():
    """Same machines as above, but inline got 4× slower relative to the
    explicit reference — a real regression, flagged despite the
    provenance mismatch."""
    baseline = _payload(
        _row("trip", seconds=0.100, python="3.11", platform="dev"),
        _row("trip", backend="explicit", seconds=1.000, python="3.11", platform="dev"),
    )
    current = _payload(
        _row("trip", seconds=1.200, python="3.12", platform="ci"),
        _row("trip", backend="explicit", seconds=3.000, python="3.12", platform="ci"),
    )
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "normalized" in problems[0]


def test_cross_machine_falls_back_to_tuple_kernel_reference():
    """XL scenarios have no explicit timing; the inline-tuple row is
    the normalizer there."""
    baseline = _payload(
        _row("xl", seconds=0.2, python="3.11", platform="dev"),
        _row("xl", backend="explicit", seconds=None, infeasible=True,
             python="3.11", platform="dev"),
        _row("xl", backend="inline-tuple", seconds=0.4, python="3.11", platform="dev"),
    )
    current_ok = _payload(
        _row("xl", seconds=0.6, python="3.12", platform="ci"),
        _row("xl", backend="inline-tuple", seconds=1.2, python="3.12", platform="ci"),
    )
    assert check_regression.check(baseline, current_ok, 2.0, 0.002) == []
    current_bad = _payload(
        _row("xl", seconds=2.4, python="3.12", platform="ci"),
        _row("xl", backend="inline-tuple", seconds=1.2, python="3.12", platform="ci"),
    )
    problems = check_regression.check(baseline, current_bad, 2.0, 0.002)
    assert len(problems) == 1 and "inline-tuple" in problems[0]


def test_cross_machine_without_reference_is_skipped():
    baseline = _payload(_row("lonely", seconds=0.1, python="3.11", platform="dev"))
    current = _payload(_row("lonely", seconds=9.0, python="3.12", platform="ci"))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_cross_machine_noise_floor_applies_to_normalized_path():
    """Sub-floor timings are all jitter; the normalized branch must not
    gate on them either."""
    baseline = _payload(
        _row("tiny", seconds=0.0009, python="3.11", platform="dev"),
        _row("tiny", backend="explicit", seconds=0.030, python="3.11", platform="dev"),
    )
    current = _payload(
        _row("tiny", seconds=0.0019, python="3.12", platform="ci"),
        _row("tiny", backend="explicit", seconds=0.030, python="3.12", platform="ci"),
    )
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_reference_from_another_machine_is_not_used():
    """A merged file can carry a reference row from a different machine
    (e.g. a carried-over explicit timing): normalizing against it would
    manufacture a regression, so the pair is skipped instead."""
    baseline = _payload(
        _row("trip", seconds=0.100, python="3.11", platform="dev"),
        _row("trip", backend="explicit", seconds=1.000, python="3.11", platform="dev"),
    )
    current = _payload(
        _row("trip", seconds=0.300, python="3.12", platform="ci"),
        # Carried-over explicit row from the dev machine.
        _row("trip", backend="explicit", seconds=1.000, python="3.11", platform="dev"),
    )
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_main_exit_codes(tmp_path):
    import json

    good = tmp_path / "good.json"
    bad = tmp_path / "bad.json"
    base = tmp_path / "base.json"
    base.write_text(json.dumps(_payload(_row("trip", seconds=0.1))))
    good.write_text(json.dumps(_payload(_row("trip", seconds=0.1))))
    bad.write_text(json.dumps(_payload(_row("trip", seconds=0.9))))
    assert check_regression.main([str(base), str(good)]) == 0
    assert check_regression.main([str(base), str(bad)]) == 1


# -- the ISSUE 5 extensions: dml_apply phase + DML presence rules -------------------


def test_dml_apply_phase_regression_fails():
    baseline = _payload(_row("dml_xl", seconds=0.5, phases={"dml_apply": 0.100}))
    current = _payload(
        # End-to-end seconds within threshold, but the apply phase
        # tripled: the dedicated gate catches what the total hides.
        _row("dml_xl", seconds=0.8, phases={"dml_apply": 0.300})
    )
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "dml_apply" in problems[0]


def test_dml_apply_phase_within_threshold_passes():
    baseline = _payload(_row("dml_xl", seconds=0.5, phases={"dml_apply": 0.100}))
    current = _payload(_row("dml_xl", seconds=0.6, phases={"dml_apply": 0.150}))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_dml_apply_phase_disappearing_fails():
    """Dropped instrumentation would silently disarm the phase gate."""
    baseline = _payload(_row("dml_xl", seconds=0.5, phases={"dml_apply": 0.100}))
    current = _payload(_row("dml_xl", seconds=0.5, phases={"execute": 0.4}))
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "missing" in problems[0]


def test_dml_apply_phase_noise_floor():
    baseline = _payload(_row("dml_small", seconds=0.5, phases={"dml_apply": 0.0005}))
    current = _payload(_row("dml_small", seconds=0.5, phases={"execute": 0.4}))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_dml_apply_phase_not_gated_cross_machine():
    """Phases are too small for cross-machine normalization; provenance
    mismatches skip the phase gate rather than compare raw seconds."""
    baseline = _payload(
        _row("dml_xl", seconds=0.5, phases={"dml_apply": 0.1},
             python="3.11", platform="dev")
    )
    current = _payload(
        _row("dml_xl", seconds=0.5, phases={"dml_apply": 0.4},
             python="3.12", platform="ci")
    )
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_dml_scenario_dropped_entirely_fails():
    baseline = _payload(_row("census_cleanup_dml_xl", seconds=0.5))
    current = _payload(_row("other", seconds=0.1))
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "dropped" in problems[0]


def test_non_dml_scenario_dropped_is_still_skipped():
    baseline = _payload(_row("trip_xl", seconds=0.5))
    current = _payload(_row("other", seconds=0.1))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_dml_kernel_row_disappearing_fails():
    baseline = _payload(
        _row("census_cleanup_dml_xl", seconds=0.5),
        _row("census_cleanup_dml_xl", backend="inline-tuple", seconds=0.7),
    )
    current = _payload(_row("census_cleanup_dml_xl", seconds=0.5))
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "inline-tuple" in problems[0]


def test_dml_kernel_row_present_passes():
    baseline = _payload(
        _row("census_cleanup_dml_xl", seconds=0.5),
        _row("census_cleanup_dml_xl", backend="inline-tuple", seconds=0.7),
    )
    current = _payload(
        _row("census_cleanup_dml_xl", seconds=0.5),
        _row("census_cleanup_dml_xl", backend="inline-tuple", seconds=0.9),
    )
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_non_dml_kernel_row_disappearing_is_skipped():
    baseline = _payload(
        _row("trip_xl", seconds=0.5),
        _row("trip_xl", backend="inline-tuple", seconds=0.7),
    )
    current = _payload(_row("trip_xl", seconds=0.5))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


# -- the ISSUE 6 extensions: array-vs-columnar speedup presence + threshold ---------


def _array_payload(*rows, array_speedups=None):
    payload = _payload(*rows)
    if array_speedups is not None:
        payload["array_speedup_over_columnar_kernel"] = dict(array_speedups)
    return payload


def test_array_speedup_within_threshold_passes():
    baseline = _array_payload(array_speedups={"trip_certain_2p16": 6.0})
    current = _array_payload(array_speedups={"trip_certain_2p16": 4.0})
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_array_speedup_collapse_fails():
    """The speedup falling past baseline/threshold is a kernel regression
    even when every inline row individually passes."""
    baseline = _array_payload(array_speedups={"census_cleanup_dml_xxl": 6.0})
    current = _array_payload(array_speedups={"census_cleanup_dml_xxl": 2.0})
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "array-vs-columnar" in problems[0]
    assert "census_cleanup_dml_xxl" in problems[0]


def test_array_speedup_disappearing_fails():
    """Losing the inline-array measurement (and with it the ratio) must
    not pass silently — presence is half the gate."""
    baseline = _array_payload(array_speedups={"trip_certain_2p16": 6.0})
    current = _array_payload(array_speedups={})
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "disappeared" in problems[0]


def test_array_speedup_map_absent_from_old_baseline_is_skipped():
    """Baselines that predate the array kernel have no map at all: new
    speedups never gate against nothing."""
    baseline = _payload(_row("trip", seconds=0.1))
    current = _array_payload(
        _row("trip", seconds=0.1),
        array_speedups={"trip_certain_2p16": 6.0},
    )
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_array_speedup_improvement_passes():
    baseline = _array_payload(array_speedups={"trip_certain_2p16": 5.0})
    current = _array_payload(array_speedups={"trip_certain_2p16": 13.0})
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


# -- the ISSUE 8 extensions: representation_size gates the factored encoding -------


def test_representation_size_within_threshold_passes():
    baseline = _payload(_row("census_repair_xl", seconds=0.1, representation_size=100))
    current = _payload(_row("census_repair_xl", seconds=0.1, representation_size=120))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_representation_size_regression_toward_product_fails():
    """The factored encoding's whole point: a committed sum-sized row
    exploding back toward the joint product must fail even when the
    seconds happen to pass."""
    baseline = _payload(_row("census_repair_xl", seconds=0.1, representation_size=100))
    current = _payload(
        _row("census_repair_xl", seconds=0.15, representation_size=204837)
    )
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "representation_size" in problems[0]
    assert "product size" in problems[0]


def test_representation_size_gates_cross_machine():
    """Sizes are deterministic row counts: a provenance mismatch that
    skips the timing comparison must not skip the size one."""
    baseline = _payload(
        _row("census_repair_xl", seconds=0.1, representation_size=100,
             python="3.11", platform="dev")
    )
    current = _payload(
        _row("census_repair_xl", seconds=0.1, representation_size=1000,
             python="3.12", platform="ci")
    )
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "representation_size" in problems[0]


def test_representation_size_gates_array_kernel_rows():
    """The nightly 2²⁰ repair only records an inline-array row — its
    size must gate too, not only backend="inline"."""
    baseline = _payload(
        _row("census_repair_2p20", backend="inline-array", seconds=0.1,
             representation_size=8272)
    )
    current = _payload(
        _row("census_repair_2p20", backend="inline-array", seconds=0.1,
             representation_size=50000)
    )
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "inline-array" in problems[0]


def test_representation_size_disappearing_from_measured_row_fails():
    baseline = _payload(_row("census_repair_xl", seconds=0.1, representation_size=100))
    current = _payload(_row("census_repair_xl", seconds=0.1))
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "missing" in problems[0]


def test_representation_size_skips_infeasible_and_unmeasured_rows():
    """An infeasible row records no size, and a scenario not re-measured
    this run is carried over — neither size-gates. (inline-array rows:
    only the size gate looks at them, so the timing rules stay quiet.)"""
    baseline = _payload(
        _row("repair_a", backend="inline-array", seconds=0.1,
             representation_size=100),
        _row("gone_this_run", backend="inline-array", seconds=0.1,
             representation_size=50),
    )
    current = _payload(
        _row("repair_a", backend="inline-array", seconds=None, infeasible=True),
        _row("other", backend="inline-array", seconds=0.1,
             representation_size=10),
    )
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_representation_size_custom_threshold():
    baseline = _payload(_row("census_repair_xl", seconds=0.1, representation_size=100))
    current = _payload(_row("census_repair_xl", seconds=0.1, representation_size=190))
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1  # default 1.5× bar
    assert (
        check_regression.check(baseline, current, 2.0, 0.002, size_threshold=2.0)
        == []
    )


def test_representation_size_explicit_rows_do_not_gate():
    """The explicit backend materializes per-world tables — its size is
    not the factored encoding's to defend."""
    baseline = _payload(
        _row("census_repair", backend="explicit", seconds=0.1,
             representation_size=30720)
    )
    current = _payload(
        _row("census_repair", backend="explicit", seconds=0.1,
             representation_size=99999)
    )
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def _guarded_row(scenario="trip_certain_xl", seconds=0.5, overhead=1.05):
    return _row(
        scenario, backend="inline-guarded", seconds=seconds, guard_overhead=overhead
    )


def test_guard_overhead_within_budget_passes():
    current = _payload(_row("trip_certain_xl", seconds=0.5), _guarded_row())
    assert check_regression.check(_payload(), current, 2.0, 0.002) == []


def test_guard_overhead_past_budget_fails():
    current = _payload(
        _row("trip_certain_xl", seconds=0.5), _guarded_row(overhead=1.3)
    )
    problems = check_regression.check(_payload(), current, 2.0, 0.002)
    assert len(problems) == 1 and "resource-guard overhead" in problems[0]


def test_guard_overhead_gate_is_absolute_not_baseline_relative():
    """A bad ratio fails even when the baseline's was just as bad."""
    baseline = _payload(_guarded_row(overhead=1.4))
    current = _payload(_guarded_row(overhead=1.4))
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "1.400" in problems[0]


def test_guard_overhead_custom_threshold():
    current = _payload(_guarded_row(overhead=1.3))
    assert (
        check_regression.check(_payload(), current, 2.0, 0.002, guard_threshold=1.5)
        == []
    )


def test_guard_overhead_noise_floor_skips_fast_rows():
    current = _payload(_guarded_row(seconds=0.01, overhead=2.0))
    assert check_regression.check(_payload(), current, 2.0, 0.002) == []


def test_guarded_row_without_ratio_does_not_gate():
    current = _payload(_row("trip_certain_xl", backend="inline-guarded", seconds=0.5))
    assert check_regression.check(_payload(), current, 2.0, 0.002) == []


def test_guarded_row_disappearing_fails():
    baseline = _payload(_guarded_row())
    problems = check_regression.check(baseline, _payload(), 2.0, 0.002)
    assert len(problems) == 1 and "inline-guarded" in problems[0]


# -- the ISSUE 9 extensions: pooled-reader snapshot overhead ------------------------


def _pool_row(scenario="pool_concurrent_readers", seconds=0.12, overhead=1.06):
    return _row(
        scenario, backend="inline-pool", seconds=seconds, snapshot_overhead=overhead
    )


def test_snapshot_overhead_within_budget_passes():
    current = _payload(_pool_row())
    assert check_regression.check(_payload(), current, 2.0, 0.002) == []


def test_snapshot_overhead_past_budget_fails():
    current = _payload(_pool_row(overhead=1.35))
    problems = check_regression.check(_payload(), current, 2.0, 0.002)
    assert len(problems) == 1 and "snapshot overhead" in problems[0]


def test_snapshot_overhead_gate_is_absolute_not_baseline_relative():
    """Like the guard gate: a bad ratio fails even when the baseline's
    was just as bad — the 1.2× budget is the contract, not the trend."""
    baseline = _payload(_pool_row(overhead=1.5))
    current = _payload(_pool_row(overhead=1.5))
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "1.500" in problems[0]


def test_snapshot_overhead_custom_threshold():
    current = _payload(_pool_row(overhead=1.35))
    assert (
        check_regression.check(
            _payload(), current, 2.0, 0.002, snapshot_threshold=1.5
        )
        == []
    )


def test_snapshot_overhead_noise_floor_skips_fast_rows():
    current = _payload(_pool_row(seconds=0.01, overhead=3.0))
    assert check_regression.check(_payload(), current, 2.0, 0.002) == []


def test_pool_row_without_ratio_does_not_gate():
    current = _payload(
        _row("pool_concurrent_readers", backend="inline-pool", seconds=0.5)
    )
    assert check_regression.check(_payload(), current, 2.0, 0.002) == []


def test_pool_row_disappearing_fails():
    """The presence half of the gate: losing the inline-pool row (and
    with it the paired ratio) must not pass silently."""
    baseline = _payload(_pool_row())
    problems = check_regression.check(baseline, _payload(), 2.0, 0.002)
    assert len(problems) == 1 and "inline-pool" in problems[0]


# -- the prepared-statement replay gate (plan cache, PR 10) --------------------------


def _replay_row(seconds=0.05, speedup=10.0, hit_rate=0.98, **extra):
    row = _row(
        "statement_replay", backend="inline-replay", seconds=seconds, **extra
    )
    if speedup is not None:
        row["plan_cache_speedup"] = speedup
    if hit_rate is not None:
        row["cache_hit_rate"] = hit_rate
    return row


def test_replay_speedup_within_budget_passes():
    baseline = _payload(_replay_row(speedup=30.0))
    current = _payload(_replay_row(speedup=5.0))
    assert check_regression.check(baseline, current, 2.0, 0.002) == []


def test_replay_speedup_collapse_fails():
    current = _payload(_replay_row(speedup=1.2))
    problems = check_regression.check(_payload(), current, 2.0, 0.002)
    assert len(problems) == 1 and "plan-cache replay speedup" in problems[0]


def test_replay_gate_is_absolute_not_baseline_relative():
    """Like the guard/pool gates: the ratio is paired and same-process,
    so it gates with no baseline row at all."""
    current = _payload(_replay_row(speedup=2.0))
    problems = check_regression.check(_payload(), current, 2.0, 0.002)
    assert len(problems) == 1


def test_replay_custom_threshold():
    current = _payload(_replay_row(speedup=5.0))
    assert (
        check_regression.check(
            _payload(), current, 2.0, 0.002, replay_threshold=6.0
        )
        != []
    )
    assert (
        check_regression.check(
            _payload(), current, 2.0, 0.002, replay_threshold=4.0
        )
        == []
    )


def test_replay_noise_floor_is_on_the_uncached_side():
    """A 2× 'collapse' on a sub-50 ms uncached replay is jitter: cached
    seconds × speedup estimates the paired uncached wall-clock."""
    current = _payload(_replay_row(seconds=0.004, speedup=2.0))
    assert check_regression.check(_payload(), current, 2.0, 0.002) == []
    slow = _payload(_replay_row(seconds=0.04, speedup=2.0))
    assert check_regression.check(_payload(), slow, 2.0, 0.002) != []


def test_replay_row_without_speedup_does_not_gate():
    current = _payload(_replay_row(speedup=None, hit_rate=None))
    assert check_regression.check(_payload(), current, 2.0, 0.002) == []


def test_replay_row_disappearing_fails():
    baseline = _payload(_replay_row())
    problems = check_regression.check(baseline, _payload(), 2.0, 0.002)
    assert len(problems) == 1 and "inline-replay row disappeared" in problems[0]


def test_replay_hit_rate_disappearing_fails():
    """The hit-rate presence rule: a measured replay row must keep the
    cache fields the baseline recorded."""
    baseline = _payload(_replay_row())
    current = _payload(_replay_row(hit_rate=None))
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "cache_hit_rate" in problems[0]


def test_replay_speedup_field_disappearing_fails():
    baseline = _payload(_replay_row())
    current = _payload(_replay_row(speedup=None))
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert len(problems) == 1 and "plan_cache_speedup" in problems[0]


def test_replay_infeasible_current_row_skips_field_presence():
    baseline = _payload(_replay_row())
    current = _payload(
        _replay_row(seconds=None, speedup=None, hit_rate=None, infeasible=True)
    )
    problems = check_regression.check(baseline, current, 2.0, 0.002)
    assert problems == []
