"""The Section 2 company-acquisition scenario and Example 4.1."""

from repro.core import (
    answer,
    cert_group,
    choice_of,
    evaluate,
    natural_join,
    poss,
    product,
    project,
    rel,
    rename,
    select,
    theta_join,
)
from repro.relational import Relation, eq, neq, Const


class TestStepwiseScenario:
    def test_u_v_w_and_final_result(self, company_ws):
        # U ← select * from Company_Emp choice of CID
        ws = evaluate(choice_of("CID", rel("Company_Emp")), company_ws, name="U")
        assert len(ws) == 2

        # V ← one (key) employee leaves that company.
        chosen = choice_of("EID2", rename({"CID": "CID2", "EID": "EID2"}, rel("U")))
        v_query = project(
            ("CID", "EID"),
            select(
                eq("CID", "CID2") & neq("EID", "EID2"),
                product(rel("Company_Emp"), chosen),
            ),
        )
        ws = evaluate(v_query, ws, name="V")
        assert len(ws) == 5
        v_answers = {frozenset(w["V"].rows) for w in ws.worlds}
        assert v_answers == {
            frozenset({("ACME", "e1")}),
            frozenset({("ACME", "e2")}),
            frozenset({("HAL", "e3"), ("HAL", "e4")}),
            frozenset({("HAL", "e3"), ("HAL", "e5")}),
            frozenset({("HAL", "e4"), ("HAL", "e5")}),
        }

        # W ← certain skills per acquisition target.
        w_query = cert_group(
            ("CID",),
            ("CID", "Skill"),
            project(("CID", "Skill"), natural_join(rel("V"), rel("Emp_Skills"))),
        )
        ws = evaluate(w_query, ws, name="W")
        assert len(ws) == 5
        w_answers = {w["W"] for w in ws.worlds}
        assert w_answers == {
            Relation(("CID", "Skill"), [("ACME", "Web")]),
            Relation(("CID", "Skill"), [("HAL", "Java")]),
        }

        # Result: possible acquisition targets guaranteeing 'Web'.
        final = poss(project("CID", select(eq("Skill", Const("Web")), rel("W"))))
        assert answer(final, ws).rows == {("ACME",)}


class TestExample41:
    def test_single_expression_query(self, company_ws):
        """Example 4.1: the whole scenario as one world-set algebra query."""
        chosen = choice_of(("CID2", "EID2"), rename({"CID": "CID2", "EID": "EID2"}, rel("Company_Emp")))
        leaves = theta_join(
            eq("CID", "CID2") & neq("EID", "EID2"), chosen, rel("Company_Emp")
        )
        v = project(("CID", "EID"), leaves)
        w = cert_group(
            ("CID",),
            ("CID", "Skill"),
            project(("CID", "Skill"), natural_join(v, rel("Emp_Skills"))),
        )
        query = poss(project("CID", select(eq("Skill", Const("Web")), w)))
        assert answer(query, company_ws).rows == {("ACME",)}

    def test_example_41_is_complete_to_complete(self, company_ws):
        from repro.core import is_complete_to_complete, query_type

        chosen = choice_of(("CID2", "EID2"), rename({"CID": "CID2", "EID": "EID2"}, rel("Company_Emp")))
        v = project(
            ("CID", "EID"),
            theta_join(eq("CID", "CID2") & neq("EID", "EID2"), chosen, rel("Company_Emp")),
        )
        w = cert_group(
            ("CID",), ("CID", "Skill"),
            project(("CID", "Skill"), natural_join(v, rel("Emp_Skills"))),
        )
        query = poss(project("CID", select(eq("Skill", Const("Web")), w)))
        assert is_complete_to_complete(query)
        assert query_type(query) == "1↦1, m↦1"
