"""Key repairs: enumeration, counting, invariants (incl. hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import count_repairs, is_repair, key_groups, key_repairs
from repro.relational import Relation


def relation(rows):
    return Relation(("K", "V"), rows)


class TestCounting:
    def test_count_is_product_of_group_sizes(self):
        r = relation([(1, "a"), (1, "b"), (2, "c"), (2, "d"), (2, "e")])
        assert count_repairs(r, ("K",)) == 2 * 3

    def test_empty_relation_has_one_repair(self):
        assert count_repairs(relation([]), ("K",)) == 1

    def test_key_groups_partition(self):
        r = relation([(1, "a"), (1, "b"), (2, "c")])
        groups = key_groups(r, ("K",))
        assert set(groups) == {(1,), (2,)}
        assert sum(len(g) for g in groups.values()) == 3


class TestEnumeration:
    def test_enumerates_all(self):
        r = relation([(1, "a"), (1, "b"), (2, "c")])
        repairs = list(key_repairs(r, ("K",)))
        assert len(repairs) == 2
        assert all(is_repair(candidate, r, ("K",)) for candidate in repairs)

    def test_empty_relation_yields_itself(self):
        r = relation([])
        assert list(key_repairs(r, ("K",))) == [r]

    def test_full_key_means_single_repair(self):
        r = relation([(1, "a"), (2, "b")])
        assert list(key_repairs(r, ("K", "V"))) == [r]


class TestIsRepair:
    def test_rejects_non_subset(self):
        r = relation([(1, "a")])
        assert not is_repair(relation([(1, "z")]), r, ("K",))

    def test_rejects_duplicate_keys(self):
        r = relation([(1, "a"), (1, "b")])
        assert not is_repair(r, r, ("K",))

    def test_rejects_missing_keys(self):
        r = relation([(1, "a"), (2, "b")])
        assert not is_repair(relation([(1, "a")]), r, ("K",))

    def test_rejects_schema_mismatch(self):
        assert not is_repair(Relation(("X",), [(1,)]), relation([(1, "a")]), ("K",))


rows_strategy = st.frozensets(
    st.tuples(st.integers(0, 3), st.integers(0, 2)), max_size=8
)


@given(rows_strategy)
@settings(max_examples=80)
def test_enumeration_matches_count_and_invariants(rows):
    r = relation(rows)
    repairs = list(key_repairs(r, ("K",)))
    assert len(repairs) == count_repairs(r, ("K",))
    assert len(set(repairs)) == len(repairs)
    if rows:
        for candidate in repairs:
            assert is_repair(candidate, r, ("K",))


@given(rows_strategy)
@settings(max_examples=50)
def test_union_of_repairs_recovers_nothing_extra(rows):
    r = relation(rows)
    union: set = set()
    for candidate in key_repairs(r, ("K",)):
        union |= candidate.rows
    assert union <= r.rows
