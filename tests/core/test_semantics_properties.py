"""Property-based invariants of the Figure 3 semantics (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    cert,
    cert_group,
    choice_of,
    evaluate,
    intersect,
    poss,
    poss_group,
    project,
    rel,
)
from repro.datagen import random_query, random_world_set

seeds = st.integers(0, 20_000)


@given(seeds)
@settings(max_examples=80, deadline=None)
def test_every_operator_preserves_base_relations(seed):
    """All operators extend worlds; R₁…R_k are never modified."""
    ws = random_world_set(seed)
    query = random_query(seed * 3 + 1, depth=3)
    result = evaluate(query, ws, name="Q")
    input_bases = {world for world in ws.worlds}
    for world in result.worlds:
        assert world.base() in input_bases


@given(seeds)
@settings(max_examples=80, deadline=None)
def test_intersect_equals_its_desugaring(seed):
    ws = random_world_set(seed)
    q = intersect(rel("R"), rel("R"))
    assert evaluate(q, ws, name="Q") == evaluate(q.desugar(), ws, name="Q")


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_poss_is_trivial_group_worlds_by(seed):
    """Figure 3 defines poss as pγ^*_true: grouping by the empty
    attribute list unifies all non-empty-answer worlds; combined with
    the (*, i.e. all-attribute) projection, poss(q) and pγ^*_∅(q) agree
    whenever some world has a non-empty answer; cert similarly."""
    ws = random_world_set(seed, max_worlds=3)
    inner = rel("R")
    closed = evaluate(poss(inner), ws, name="Q")
    grouped = evaluate(poss_group((), ("A", "B"), inner), ws, name="Q")
    # Grouping by π_∅ splits empty-answer worlds from non-empty ones,
    # so compare only when every world has a non-empty answer.
    if all(world["R"] for world in ws.worlds):
        assert closed == grouped


@given(seeds)
@settings(max_examples=80, deadline=None)
def test_cert_answer_contained_in_every_world_answer(seed):
    ws = random_world_set(seed)
    inner = choice_of("A", rel("R"))
    opened = evaluate(inner, ws, name="Q")
    closed = evaluate(cert(inner), ws, name="Q")
    certain = next(iter(closed.worlds))["Q"] if closed.worlds else None
    for world in opened.worlds:
        if certain is not None:
            assert certain.rows <= world["Q"].rows or certain.rows == set()


@given(seeds)
@settings(max_examples=80, deadline=None)
def test_poss_answer_is_union_of_world_answers(seed):
    ws = random_world_set(seed)
    inner = choice_of("B", rel("R"))
    opened = evaluate(inner, ws, name="Q")
    closed = evaluate(poss(inner), ws, name="Q")
    union_rows = set()
    for world in opened.worlds:
        union_rows |= world["Q"].rows
    for world in closed.worlds:
        assert world["Q"].rows == union_rows


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_choice_of_partitions_each_world_answer(seed):
    """The χ-created answers partition the original answer per world."""
    ws = random_world_set(seed, max_worlds=1)
    opened = evaluate(choice_of("A", rel("R")), ws, name="Q")
    original = ws.the_world()["R"]
    pieces = [world["Q"].rows for world in opened.worlds]
    recombined = set().union(*pieces) if pieces else set()
    assert recombined == original.rows
    for i, left in enumerate(pieces):
        for right in pieces[i + 1 :]:
            assert not (left & right) or left == right


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_group_worlds_by_full_projection_is_identity_on_answers(seed):
    """Eq. (12) semantically: pγ^X_X(q) answers = π_X(q) answers."""
    ws = random_world_set(seed)
    grouped = evaluate(poss_group(("A",), ("A",), rel("R")), ws, name="Q")
    projected = evaluate(project("A", rel("R")), ws, name="Q")
    assert grouped == projected


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_evaluation_is_deterministic(seed):
    ws = random_world_set(seed)
    query = random_query(seed + 17, depth=3)
    assert evaluate(query, ws, name="Q") == evaluate(query, ws, name="Q")


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_cert_group_bounded_by_poss_group(seed):
    ws = random_world_set(seed)
    certain = evaluate(cert_group(("A",), ("A", "B"), rel("R")), ws, name="Q")
    possible = evaluate(poss_group(("A",), ("A", "B"), rel("R")), ws, name="Q")
    cert_by_base = {w.base(): w["Q"].rows for w in certain.worlds}
    for world in possible.worlds:
        assert cert_by_base[world.base()] <= world["Q"].rows
