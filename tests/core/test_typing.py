"""Operator typing (Section 4.1): kinds 1 and m with overloading."""

import pytest

from repro.errors import TypingError
from repro.core import (
    MANY,
    ONE,
    cert,
    cert_group,
    choice_of,
    is_complete_to_complete,
    kind_after,
    poss,
    poss_group,
    project,
    query_type,
    rel,
    repair_by_key,
    select,
    union,
)
from repro.relational import eq, Const


class TestKinds:
    def test_relational_operators_preserve_kind(self):
        q = project("A", select(eq("A", Const(1)), rel("R")))
        assert kind_after(q, ONE) == ONE
        assert kind_after(q, MANY) == MANY

    def test_choice_of_splits(self):
        q = choice_of("A", rel("R"))
        assert kind_after(q, ONE) == MANY
        assert kind_after(q, MANY) == MANY

    def test_repair_splits(self):
        assert kind_after(repair_by_key("A", rel("R")), ONE) == MANY

    def test_closing_operators_are_m_to_1(self):
        assert kind_after(poss(choice_of("A", rel("R"))), ONE) == ONE
        assert kind_after(cert(rel("R")), MANY) == ONE

    def test_groups_preserve_kind(self):
        q = poss_group("A", "A", choice_of("A", rel("R")))
        assert kind_after(q, ONE) == MANY
        q2 = cert_group("A", "A", rel("R"))
        assert kind_after(q2, ONE) == ONE

    def test_binary_combines(self):
        q = union(rel("R"), choice_of("A", rel("R")))
        assert kind_after(q, ONE) == MANY

    def test_invalid_kind_rejected(self):
        with pytest.raises(TypingError):
            kind_after(rel("R"), "zero")


class TestQueryTypes:
    def test_paper_queries_are_1_to_1(self):
        """All Section 2 queries end in poss/cert, hence type 1↦1."""
        trip = cert(project("Arr", choice_of("Dep", rel("HFlights"))))
        assert query_type(trip) == "1↦1, m↦1"
        assert is_complete_to_complete(trip)

    def test_open_query_is_1_to_m(self):
        q = choice_of("Dep", rel("HFlights"))
        assert query_type(q) == "1↦m, m↦m"
        assert not is_complete_to_complete(q)

    def test_plain_relational_query(self):
        q = select(eq("Dep", Const("FRA")), rel("HFlights"))
        assert query_type(q) == "1↦1, m↦m"
        assert is_complete_to_complete(q)
