"""World-set algebra AST: validation, structure, desugaring."""

import pytest

from repro.errors import SchemaError
from repro.core import ast as wsa
from repro.relational import Schema, eq, Const

ENV = {"R": Schema(("A", "B")), "S": Schema(("B", "C"))}


class TestAttributeInference:
    def test_rel(self):
        assert wsa.rel("R").attributes(ENV) == ("A", "B")

    def test_rel_unknown(self):
        with pytest.raises(SchemaError):
            wsa.rel("Z").attributes(ENV)

    def test_select_validates_predicate(self):
        with pytest.raises(SchemaError):
            wsa.select(eq("Z", Const(1)), wsa.rel("R")).attributes(ENV)

    def test_project(self):
        assert wsa.project("A", wsa.rel("R")).attributes(ENV) == ("A",)
        with pytest.raises(SchemaError):
            wsa.project(("A", "A"), wsa.rel("R")).attributes(ENV)
        with pytest.raises(SchemaError):
            wsa.project("Z", wsa.rel("R")).attributes(ENV)

    def test_empty_projection_is_legal(self):
        assert wsa.project((), wsa.rel("R")).attributes(ENV) == ()

    def test_rename(self):
        assert wsa.rename({"A": "X"}, wsa.rel("R")).attributes(ENV) == ("X", "B")

    def test_product_requires_disjoint(self):
        with pytest.raises(SchemaError, match="share"):
            wsa.product(wsa.rel("R"), wsa.rel("S")).attributes(ENV)

    def test_set_ops_require_equal_attrs(self):
        with pytest.raises(SchemaError):
            wsa.union(wsa.rel("R"), wsa.rel("S")).attributes(ENV)
        assert wsa.union(wsa.rel("R"), wsa.rel("R")).attributes(ENV) == ("A", "B")

    def test_natural_join(self):
        q = wsa.natural_join(wsa.rel("R"), wsa.rel("S"))
        assert q.attributes(ENV) == ("A", "B", "C")
        assert q.shared_attributes(ENV) == ("B",)

    def test_divide(self):
        q = wsa.divide(wsa.rel("R"), wsa.project("B", wsa.rel("R")))
        assert q.attributes(ENV) == ("A",)
        with pytest.raises(SchemaError):
            wsa.divide(wsa.rel("R"), wsa.rel("S")).attributes(ENV)

    def test_choice_and_groups_validate(self):
        assert wsa.choice_of("A", wsa.rel("R")).attributes(ENV) == ("A", "B")
        with pytest.raises(SchemaError):
            wsa.choice_of("Z", wsa.rel("R")).attributes(ENV)
        q = wsa.poss_group("A", ("A", "B"), wsa.rel("R"))
        assert q.attributes(ENV) == ("A", "B")
        with pytest.raises(SchemaError):
            wsa.cert_group("Z", "A", wsa.rel("R")).attributes(ENV)

    def test_repair(self):
        assert wsa.repair_by_key("A", wsa.rel("R")).attributes(ENV) == ("A", "B")

    def test_active_domain(self):
        assert wsa.active_domain(("X", "Y")).attributes(ENV) == ("X", "Y")
        with pytest.raises(SchemaError):
            wsa.active_domain(())


class TestStructure:
    def test_equality_and_hash(self):
        a = wsa.poss(wsa.project("A", wsa.rel("R")))
        b = wsa.poss(wsa.project("A", wsa.rel("R")))
        assert a == b and hash(a) == hash(b)
        assert a != wsa.cert(wsa.project("A", wsa.rel("R")))

    def test_size_and_walk(self):
        q = wsa.cert(wsa.project("A", wsa.choice_of("B", wsa.rel("R"))))
        assert q.size() == 4
        assert len(list(q.walk())) == 4

    def test_relation_names(self):
        q = wsa.product(wsa.rel("R"), wsa.rename({"B": "B2", "C": "C2"}, wsa.rel("S")))
        assert q.relation_names() == frozenset({"R", "S"})

    def test_to_text_roundtrips_structure(self):
        q = wsa.cert_group(("A",), ("A", "B"), wsa.rel("R"))
        assert q.to_text() == "cγ[A,B; by A](R)"

    def test_with_children_rebuild(self):
        q = wsa.select(eq("A", Const(1)), wsa.rel("R"))
        rebuilt = q._with_children((wsa.rel("R"),))
        assert rebuilt == q


class TestDesugar:
    def test_theta_join(self):
        q = wsa.theta_join(eq("A", "C"), wsa.rel("R"), wsa.rename({"B": "B2"}, wsa.rel("S")))
        lowered = q.desugar()
        assert isinstance(lowered, wsa.Select)
        assert isinstance(lowered.child, wsa.Product)

    def test_intersect(self):
        q = wsa.intersect(wsa.rel("R"), wsa.rel("R"))
        lowered = q.desugar()
        assert isinstance(lowered, wsa.Difference)

    def test_natural_join_expansion(self):
        q = wsa.natural_join(wsa.rel("R"), wsa.rel("S"))
        expansion = q.desugar().expand(ENV)
        assert isinstance(expansion, wsa.Project)
        assert expansion.attributes(ENV) == ("A", "B", "C")

    def test_divide_expansion(self):
        q = wsa.divide(wsa.rel("R"), wsa.project("B", wsa.rel("R")))
        expansion = q.expand(ENV)
        assert expansion.attributes(ENV) == ("A",)
