"""Proposition 4.2: the 3-colorability reduction (guess and check)."""

import pytest

from repro.core.np_hard import (
    THREE_COLORS,
    brute_force_colorable,
    check_query,
    coloring_candidates,
    edge_relation,
    guess_query,
    is_colorable,
)
from repro.core.typing import MANY, ONE, kind_after
from repro.datagen import random_graph


class TestBuildingBlocks:
    def test_candidates_cover_all_pairs(self):
        cand = coloring_candidates(["a", "b"], ("r", "g"))
        assert len(cand) == 4

    def test_edge_relation_is_symmetric(self):
        edges = edge_relation([("a", "b")])
        assert edges.rows == {("a", "b"), ("b", "a")}

    def test_guess_query_splits_worlds(self):
        assert kind_after(guess_query(), ONE) == MANY

    def test_check_query_closes_worlds(self):
        assert kind_after(check_query(), MANY) == ONE


class TestDecisions:
    def test_triangle_is_3_colorable(self):
        assert is_colorable("abc", [("a", "b"), ("b", "c"), ("a", "c")])

    def test_k4_is_not_3_colorable(self):
        vertices = "abcd"
        edges = [(u, v) for i, u in enumerate(vertices) for v in vertices[i + 1 :]]
        assert not is_colorable(vertices, edges)

    def test_k4_is_4_colorable(self):
        vertices = "abcd"
        edges = [(u, v) for i, u in enumerate(vertices) for v in vertices[i + 1 :]]
        assert is_colorable(vertices, edges, colors=("r", "g", "b", "y"))

    def test_edgeless_graph(self):
        assert is_colorable("ab", [])

    def test_empty_graph(self):
        assert is_colorable("", [])

    def test_two_colorability_of_even_cycle(self):
        cycle = [("v0", "v1"), ("v1", "v2"), ("v2", "v3"), ("v3", "v0")]
        assert is_colorable([f"v{i}" for i in range(4)], cycle, colors=("r", "g"))

    def test_two_colorability_fails_on_odd_cycle(self):
        cycle = [("v0", "v1"), ("v1", "v2"), ("v2", "v0")]
        assert not is_colorable([f"v{i}" for i in range(3)], cycle, colors=("r", "g"))


@pytest.mark.parametrize("seed", range(6))
def test_reduction_agrees_with_brute_force(seed):
    vertices, edges = random_graph(5, 0.55, seed=seed)
    expected = brute_force_colorable(vertices, edges, THREE_COLORS)
    assert is_colorable(vertices, edges) == expected
