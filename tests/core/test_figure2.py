"""Figure 2 and Examples 3.1/3.2: trip planning on the world-set level."""

from repro.core import cert, choice_of, evaluate, project, rel
from repro.relational import Relation


class TestFigure2b:
    def test_choice_of_dep_creates_three_worlds(self, flights_ws):
        result = evaluate(choice_of("Dep", rel("Flights")), flights_ws, name="F")
        assert len(result) == 3
        answers = {frozenset(w["F"].rows) for w in result.worlds}
        assert answers == {
            frozenset({("FRA", "BCN"), ("FRA", "ATL")}),
            frozenset({("PAR", "ATL"), ("PAR", "BCN")}),
            frozenset({("PHL", "ATL")}),
        }


class TestFigure2d:
    def test_certain_arrivals_extend_every_world(self, figure2b_worlds):
        """Figure 2 (d): each world gains F = {ATL}."""
        result = evaluate(cert(project("Arr", rel("Flights"))), figure2b_worlds, name="F")
        assert len(result) == 3
        for world in result.worlds:
            assert world["F"] == Relation(("Arr",), [("ATL",)])

    def test_from_single_world_the_answer_is_unique(self, flights_ws):
        from repro.core import answer

        q = cert(project("Arr", choice_of("Dep", rel("Flights"))))
        assert answer(q, flights_ws).rows == {("ATL",)}
