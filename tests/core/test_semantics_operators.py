"""Figure 3 semantics, operator by operator."""

import pytest

from repro.errors import EvaluationError
from repro.core import (
    answer,
    answers,
    cert,
    cert_group,
    choice_of,
    difference,
    divide,
    evaluate,
    evaluate_on_database,
    intersect,
    natural_join,
    poss,
    poss_group,
    product,
    project,
    rel,
    rename,
    repair_by_key,
    select,
    theta_join,
    union,
)
from repro.core.ast import active_domain
from repro.relational import Relation, eq, neq, Const
from repro.worlds import World, WorldSet


def ws_of(*row_sets, attrs=("A",), name="R"):
    return WorldSet(
        [World.of({name: Relation(attrs, rows)}) for rows in row_sets]
    )


class TestBaseAndUnary:
    def test_identity_copies_relation_into_answer(self):
        ws = ws_of([(1,)], [(2,)])
        result = evaluate(rel("R"), ws, name="Q")
        assert result.relation_names == ("R", "Q")
        for world in result.worlds:
            assert world["Q"] == world["R"]

    def test_select_per_world(self):
        ws = ws_of([(1,), (2,)], [(2,), (3,)])
        result = answers(select(eq("A", Const(2)), rel("R")), ws)
        assert result == {Relation(("A",), [(2,)])}

    def test_project_and_rename(self):
        ws = ws_of([(1, 2)], attrs=("A", "B"))
        assert answer(project("B", rel("R")), ws).rows == {(2,)}
        assert answer(rename({"A": "X"}, rel("R")), ws).schema.attributes == ("X", "B")


class TestBinary:
    def test_binary_matches_on_base_relations(self):
        """Figure 3: operands combine only within the same base world."""
        ws = ws_of([(1,)], [(2,)])
        q = union(rel("R"), select(neq("A", Const(0)), rel("R")))
        result = evaluate(q, ws, name="Q")
        assert len(result) == 2
        for world in result.worlds:
            assert world["Q"] == world["R"]

    def test_product_pairs_choice_worlds(self):
        """The binary join of world-sets produces all world combinations."""
        ws = ws_of([(1,), (2,)])
        q = product(
            rename({"A": "X"}, choice_of("A", rel("R"))),
            rename({"A": "Y"}, choice_of("A", rel("R"))),
        )
        result = evaluate(q, ws, name="Q")
        assert {world["Q"] for world in result.worlds} == {
            Relation(("X", "Y"), [(a, b)]) for a in (1, 2) for b in (1, 2)
        }

    def test_difference_and_intersection(self):
        ws = ws_of([(1,), (2,)])
        assert answer(
            difference(rel("R"), select(eq("A", Const(1)), rel("R"))), ws
        ).rows == {(2,)}
        assert answer(
            intersect(rel("R"), select(eq("A", Const(1)), rel("R"))), ws
        ).rows == {(1,)}

    def test_derived_joins_match_desugaring(self):
        ws = WorldSet.single(
            World.of(
                {
                    "R": Relation(("A", "B"), [(1, 2), (2, 3)]),
                    "S": Relation(("B", "C"), [(2, "x")]),
                }
            )
        )
        q = natural_join(rel("R"), rel("S"))
        assert answer(q, ws).rows == {(1, 2, "x")}
        tq = theta_join(eq("B", "B2"), rel("R"), rename({"B": "B2", "C": "C2"}, rel("S")))
        assert answer(tq, ws).rows == {(1, 2, 2, "x")}

    def test_divide_in_algebra(self):
        ws = WorldSet.single(
            World.of({"R": Relation(("A", "B"), [(1, 2), (1, 3), (2, 2)])})
        )
        q = divide(rel("R"), project("B", rel("R")))
        assert answer(q, ws).rows == {(1,)}


class TestChoiceOf:
    def test_splits_per_distinct_value(self):
        ws = ws_of([(1,), (1,), (2,)])
        result = evaluate(choice_of("A", rel("R")), ws, name="Q")
        assert {w["Q"] for w in result.worlds} == {
            Relation(("A",), [(1,)]),
            Relation(("A",), [(2,)]),
        }

    def test_choice_keeps_base_relations(self):
        ws = ws_of([(1,), (2,)])
        result = evaluate(choice_of("A", rel("R")), ws, name="Q")
        for world in result.worlds:
            assert world["R"].rows == {(1,), (2,)}

    def test_empty_answer_keeps_one_world(self):
        """Figure 3's dummy choice v=1 on the empty relation."""
        ws = ws_of([])
        result = evaluate(choice_of("A", rel("R")), ws, name="Q")
        assert len(result) == 1
        assert not result.the_world()["Q"]

    def test_choice_on_multiple_attributes(self):
        ws = ws_of([(1, "x"), (1, "y")], attrs=("A", "B"))
        result = evaluate(choice_of(("A", "B"), rel("R")), ws, name="Q")
        assert len(result) == 2

    def test_empty_attribute_choice_is_identity_per_world(self):
        ws = ws_of([(1,), (2,)])
        result = evaluate(choice_of((), rel("R")), ws, name="Q")
        assert len(result) == 1
        assert result.the_world()["Q"].rows == {(1,), (2,)}


class TestClosings:
    def test_example_31_certain_arrivals(self, figure2b_worlds):
        """Example 3.1: cert extends all three worlds with F = {ATL}."""
        q = cert(project("Arr", rel("Flights")))
        result = evaluate(q, figure2b_worlds, name="F")
        assert len(result) == 3  # worlds differ in their base Flights
        for world in result.worlds:
            assert world["F"].rows == {("ATL",)}

    def test_poss_collects_union(self):
        ws = ws_of([(1,)], [(2,)])
        result = evaluate(poss(rel("R")), ws, name="Q")
        for world in result.worlds:
            assert world["Q"].rows == {(1,), (2,)}

    def test_closing_collapses_choice_worlds(self):
        ws = ws_of([(1,), (2,)])
        result = evaluate(poss(choice_of("A", rel("R"))), ws, name="Q")
        assert len(result) == 1  # uniform answers + same base collapse

    def test_empty_world_set_propagates(self):
        ws = WorldSet.empty((("R", Relation(("A",)).schema),))
        assert len(evaluate(cert(rel("R")), ws, name="Q")) == 0


class TestGroupWorldsBy:
    def test_groups_by_projection(self):
        ws = ws_of([(1, "x")], [(1, "y")], [(2, "z")], attrs=("A", "B"))
        q = poss_group(("A",), ("A", "B"), rel("R"))
        result = evaluate(q, ws, name="Q")
        by_base = {
            next(iter(w["R"].rows)): w["Q"].rows for w in result.worlds
        }
        assert by_base[(1, "x")] == {(1, "x"), (1, "y")}
        assert by_base[(2, "z")] == {(2, "z")}

    def test_cert_group_intersects(self):
        ws = ws_of([(1, "x"), (1, "y")], [(1, "x"), (1, "z")], attrs=("A", "B"))
        q = cert_group(("A",), ("A", "B"), rel("R"))
        result = evaluate(q, ws, name="Q")
        for world in result.worlds:
            assert world["Q"].rows == {(1, "x")}

    def test_empty_answers_group_together(self):
        ws = ws_of([], [(1,)])
        q = poss_group(("A",), ("A",), select(eq("A", Const(99)), rel("R")))
        result = evaluate(q, ws, name="Q")
        for world in result.worlds:
            assert not world["Q"]

    def test_grouping_ignores_base_relations(self):
        """Following Example 3.1, grouping compares answers only."""
        ws = ws_of([(1,)], [(1,), (1,)], [(2,)])
        q = poss_group(("A",), ("A",), rel("R"))
        result = evaluate(q, ws, name="Q")
        one_worlds = [w for w in result.worlds if (1,) in w["R"].rows]
        for world in one_worlds:
            assert world["Q"].rows == {(1,)}


class TestRepairByKey:
    def test_enumerates_repairs(self):
        ws = ws_of([(1, "x"), (1, "y"), (2, "z")], attrs=("K", "V"))
        result = evaluate(repair_by_key("K", rel("R")), ws, name="Q")
        repaired = {frozenset(w["Q"].rows) for w in result.worlds}
        assert repaired == {
            frozenset({(1, "x"), (2, "z")}),
            frozenset({(1, "y"), (2, "z")}),
        }

    def test_empty_relation_single_repair(self):
        ws = ws_of([], attrs=("K", "V"))
        result = evaluate(repair_by_key("K", rel("R")), ws, name="Q")
        assert len(result) == 1

    def test_max_worlds_guard(self):
        rows = [(i // 2, i) for i in range(20)]  # 2^10 repairs
        ws = ws_of(rows, attrs=("K", "V"))
        with pytest.raises(EvaluationError, match="repair-by-key"):
            evaluate(repair_by_key("K", rel("R")), ws, name="Q", max_worlds=100)


class TestActiveDomain:
    def test_domain_relation(self):
        ws = ws_of([(1,)], [(2,)])
        result = evaluate(active_domain(("X",)), ws, name="Q")
        for world in result.worlds:
            assert world["Q"].rows == {(1,), (2,)}

    def test_arity_two(self):
        ws = ws_of([(1,), (2,)])
        result = evaluate(active_domain(("X", "Y")), ws, name="Q")
        assert len(next(iter(result.worlds))["Q"]) == 4


class TestConvenienceAPI:
    def test_answer_requires_uniformity(self):
        ws = ws_of([(1,), (2,)])
        with pytest.raises(EvaluationError, match="distinct answers"):
            answer(choice_of("A", rel("R")), ws)

    def test_evaluate_on_database(self):
        from repro.relational import Database

        db = Database({"R": Relation(("A",), [(1,)])})
        result = evaluate_on_database(rel("R"), db, name="Q")
        assert result.the_world()["Q"].rows == {(1,)}

    def test_answer_name_defaults_to_fresh(self):
        ws = ws_of([(1,)])
        result = evaluate(rel("R"), ws)
        assert result.relation_names[0] == "R"
        assert len(result.relation_names) == 2
