"""Shared fixtures: the paper's example relations and world-sets.

Also hosts the nightly-fuzz artifact hook: when ``REPRO_FUZZ_ARTIFACTS``
names a directory, every failing test's node id is appended to
``failing_seeds.txt`` there. The randomized differential suites encode
their seed in the parametrized id, so the scaled nightly run
(``REPRO_FUZZ_SCRIPTS=2000``) leaves behind exactly the commands needed
to reproduce each failure at PR-time scale.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.datagen import paper_company, paper_flights
from repro.relational import Database, Relation
from repro.worlds import World, WorldSet


def pytest_runtest_logreport(report: pytest.TestReport) -> None:
    artifacts = os.environ.get("REPRO_FUZZ_ARTIFACTS")
    if not artifacts or not report.failed or report.when != "call":
        return
    directory = pathlib.Path(artifacts)
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "failing_seeds.txt", "a", encoding="utf-8") as out:
        out.write(report.nodeid + "\n")


@pytest.fixture
def flights() -> Relation:
    """Figure 2 (a): the five-row Flights relation."""
    return paper_flights()


@pytest.fixture
def flights_db(flights: Relation) -> Database:
    return Database({"Flights": flights})


@pytest.fixture
def flights_ws(flights: Relation) -> WorldSet:
    """The singleton world-set over Figure 2 (a)."""
    return WorldSet.single(World.of({"Flights": flights}))


@pytest.fixture
def hflights_db(flights: Relation) -> Database:
    """The trip-planning view HFlights (all departures are hometowns)."""
    return Database({"HFlights": flights})


@pytest.fixture
def company_ws() -> WorldSet:
    """The Section 2 company acquisition database as a world-set."""
    company_emp, emp_skills = paper_company()
    return WorldSet.single(
        World.of({"Company_Emp": company_emp, "Emp_Skills": emp_skills})
    )


@pytest.fixture
def figure2b_worlds(flights: Relation) -> WorldSet:
    """Figure 2 (b): the three worlds created by choice-of on Dep."""
    worlds = []
    for dep in ("FRA", "PAR", "PHL"):
        rows = [row for row in flights.rows if row[0] == dep]
        worlds.append(World.of({"Flights": Relation(("Dep", "Arr"), rows)}))
    return WorldSet(worlds)


@pytest.fixture
def figure5_db() -> Database:
    """Figure 5 (a): relations R(A, B) and S(C, D)."""
    r = Relation(("A", "B"), [(1, 2), (2, 3), (2, 4), (3, 2)])
    s = Relation(("C", "D"), [(2, 3), (4, 5)])
    return Database({"R": r, "S": s})
