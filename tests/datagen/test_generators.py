"""Workload generators: determinism, shape, and schema guarantees."""

from repro.datagen import (
    census,
    company,
    flights,
    hotels,
    lineitem,
    paper_company,
    paper_flights,
    random_graph,
    random_query,
    random_relation,
    random_world_set,
)


class TestPaperInstances:
    def test_paper_flights_matches_figure_2a(self):
        relation = paper_flights()
        assert relation.schema.attributes == ("Dep", "Arr")
        assert len(relation) == 5
        assert ("PHL", "ATL") in relation

    def test_paper_company_matches_section_2(self):
        company_emp, emp_skills = paper_company()
        assert len(company_emp) == 5 and len(emp_skills) == 6


class TestScalableGenerators:
    def test_flights_deterministic(self):
        assert flights(5, 8, 3, seed=1) == flights(5, 8, 3, seed=1)
        assert flights(5, 8, 3, seed=1) != flights(5, 8, 3, seed=2)

    def test_flights_guarantee_common_arrival(self):
        relation = flights(10, 20, 4, seed=3)
        departures = {row[0] for row in relation.rows}
        assert len(departures) == 10
        for dep in departures:
            assert (dep, "A0") in relation

    def test_hotels_cover_cities(self):
        relation = hotels(4, 2, seed=0)
        assert len(relation) == 8
        assert {row[1] for row in relation.rows} == {"A0", "A1", "A2", "A3"}

    def test_company_sizes(self):
        company_emp, emp_skills = company(3, 4, 5, 2, seed=0)
        assert len(company_emp) == 12
        assert {row[0] for row in company_emp.rows} == {"C0", "C1", "C2"}
        assert emp_skills.schema.attributes == ("EID", "Skill")

    def test_census_produces_duplicates(self):
        relation = census(20, duplicate_rate=1.0, seed=0)
        ssns = [row[0] for row in relation.rows]
        assert len(ssns) > len(set(ssns))

    def test_census_clean_when_rate_zero(self):
        relation = census(20, duplicate_rate=0.0, seed=0)
        ssns = [row[0] for row in relation.rows]
        assert len(ssns) == len(set(ssns))

    def test_lineitem_schema_and_years(self):
        relation = lineitem(years=(2001, 2002), rows_per_year=10, seed=0)
        assert relation.schema.attributes == ("Product", "Quantity", "Price", "Year")
        assert {row[3] for row in relation.rows} == {2001, 2002}

    def test_random_graph_deterministic(self):
        assert random_graph(6, 0.5, seed=4) == random_graph(6, 0.5, seed=4)
        vertices, edges = random_graph(6, 1.0, seed=0)
        assert len(edges) == 15


class TestRandomInstances:
    def test_world_set_deterministic(self):
        assert random_world_set(7) == random_world_set(7)

    def test_world_set_schema(self):
        ws = random_world_set(11)
        assert ws.relation_names == ("R", "S")

    def test_random_query_deterministic_and_valid(self):
        from repro.relational import Schema

        env = {"R": Schema(("A", "B")), "S": Schema(("C", "D"))}
        for seed in range(30):
            q = random_query(seed)
            assert q == random_query(seed)
            q.attributes(env)  # must be well-formed

    def test_random_query_constant_free_mode(self):
        from repro.datagen.random_worlds import query_constants

        for seed in range(30):
            q = random_query(seed, allow_constants=False)
            assert not query_constants(q)

    def test_random_relation_bounds(self):
        import random

        relation = random_relation(("A", "B"), random.Random(0), max_rows=4)
        assert len(relation) <= 4


class TestXLScenarios:
    def test_census_pinned_duplicates(self):
        from repro.datagen import census

        dirty = census(20, seed=4, duplicates=6)
        assert len(dirty) == 26
        violating = {
            ssn
            for ssn in {row[0] for row in dirty}
            if sum(1 for row in dirty if row[0] == ssn) > 1
        }
        assert len(violating) == 6
        assert census(20, seed=4, duplicates=6) == dirty  # deterministic

    def test_xl_scenarios_shape(self):
        """Structure only — the XL workloads run in benchmarks, not here."""
        from repro.datagen import xl_scenarios

        suite = {s.name: s for s in xl_scenarios()}
        assert set(suite) == {
            "census_cleanup_dml_xxl",
            "census_cleanup_dml_xl",
            "trip_certain_2p16",
            "census_repair_xl",
            "acquisition_xl",
            "tpch_what_if_xl",
        }
        assert all(s.explicit_infeasible for s in suite.values())
        # The DML-heavy what-if: subqueries in update/delete conditions
        # and set expressions, at a world count the explicit engine
        # cannot decode (ISSUE 4).
        dml = suite["census_cleanup_dml_xl"]
        assert dml.approx_worlds >= 2**12
        assert "update" in dml.script and "delete" in dml.script
        assert "(select" in dml.script
        # The batched DML pipeline scenario (ISSUE 5): a 2¹⁶-world
        # split, then a multi-statement *subquery-free* cleanup run on
        # one relation — exactly the shape run_script coalesces into a
        # single backend pass — closed by an insert visible as the one
        # certain row.
        xxl = suite["census_cleanup_dml_xxl"]
        assert xxl.approx_worlds == 2**16
        assert "(select" not in xxl.script.split(";", 1)[1]
        assert xxl.script.count("update") + xxl.script.count("delete") >= 4
        assert "insert" in xxl.script
        assert sum(len(rel) for _, rel in xxl.relations) >= 10**5
        assert suite["trip_certain_2p16"].approx_worlds == 2**16
        assert all(s.approx_worlds >= 2**12 for s in suite.values())
        # ≥10⁵ inlined rows once the script replays: the generators alone
        # must already carry the base bulk for trip planning.
        trip_rows = sum(
            len(rel) for _, rel in suite["trip_certain_2p16"].relations
        )
        assert trip_rows >= 10**5
