"""Proposition 4.5: world-set algebra is generic (property-based).

Definition 4.4 states genericity for constant-free queries ("the above
definition ignores the issue of constants in queries … it can be easily
generalized"): the first suite checks constant-free queries against
arbitrary bijections, the second checks C-genericity — queries with
constants commute with bijections that fix those constants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semantics import evaluate
from repro.datagen import random_query, random_world_set
from repro.datagen.random_worlds import query_constants
from repro.worlds import check_generic


@st.composite
def constant_free_instance(draw):
    seed = draw(st.integers(0, 10_000))
    world_set = random_world_set(seed)
    query = random_query(seed * 31 + 7, depth=3, allow_constants=False)
    domain = sorted(world_set.active_domain(), key=str)
    targets = draw(st.permutations([f"v{i}" for i in range(len(domain))]))
    theta = dict(zip(domain, targets))
    return world_set, query, theta


@given(constant_free_instance())
@settings(max_examples=60, deadline=None)
def test_constant_free_queries_commute_with_any_bijection(case):
    world_set, query, theta = case
    assert check_generic(
        lambda ws: evaluate(query, ws, name="Q"), world_set, theta
    )


@st.composite
def c_generic_instance(draw):
    seed = draw(st.integers(0, 10_000))
    world_set = random_world_set(seed)
    query = random_query(seed * 13 + 3, depth=3, allow_constants=True)
    constants = query_constants(query)
    domain = sorted(world_set.active_domain(), key=str)
    movable = [value for value in domain if value not in constants]
    targets = draw(st.permutations([f"v{i}" for i in range(len(movable))]))
    theta = dict(zip(movable, targets))
    theta.update({value: value for value in constants})
    return world_set, query, theta


@given(c_generic_instance())
@settings(max_examples=60, deadline=None)
def test_queries_with_constants_commute_with_constant_fixing_bijections(case):
    world_set, query, theta = case
    assert check_generic(
        lambda ws: evaluate(query, ws, name="Q"), world_set, theta
    )


def test_constants_break_plain_genericity():
    """A witness for why Definition 4.4 sets constants aside."""
    from repro.core import rel, select
    from repro.relational import Const, eq
    from repro.relational import Relation
    from repro.worlds import World, WorldSet

    ws = WorldSet.single(World.of({"R": Relation(("A", "B"), [(1, 1), (2, 2)])}))
    query = select(eq("A", Const(1)), rel("R"))
    theta = {1: 2, 2: 1}
    assert not check_generic(lambda w: evaluate(query, w, name="Q"), ws, theta)


@given(st.integers(0, 5_000))
@settings(max_examples=40, deadline=None)
def test_repair_by_key_is_generic_too(seed):
    """The Section 4.1 extension also preserves genericity."""
    world_set = random_world_set(seed, max_worlds=2, max_rows=4)
    query = random_query(
        seed * 13 + 1, depth=2, allow_repair=True, allow_constants=False
    )
    domain = sorted(world_set.active_domain(), key=str)
    theta = {value: f"t{i}" for i, value in enumerate(domain)}
    assert check_generic(
        lambda ws: evaluate(query, ws, name="Q", max_worlds=20_000),
        world_set,
        theta,
    )
