"""Worlds and world-sets: structure, closures, collapse semantics."""

import pytest

from repro.errors import SchemaError
from repro.relational import Relation
from repro.worlds import World, WorldSet


def world(rows, name="R", attrs=("A",)):
    return World.of({name: Relation(attrs, rows)})


class TestWorld:
    def test_signature(self):
        w = world([(1,)])
        assert w.signature() == (("R", Relation(("A",)).schema),)

    def test_restrict_and_base(self):
        w = World.of(
            {"R": Relation(("A",), [(1,)]), "Q": Relation(("B",), [(2,)])}
        )
        assert w.base().names == ("R",)
        assert w.restrict(("Q",)).names == ("Q",)

    def test_answer_is_last_relation(self):
        w = World.of(
            {"R": Relation(("A",), [(1,)]), "Q": Relation(("B",), [(2,)])}
        )
        assert w.answer().rows == {(2,)}

    def test_extend_rejects_existing_name(self):
        with pytest.raises(SchemaError):
            world([(1,)]).extend("R", Relation(("B",)))

    def test_replace_answer(self):
        w = world([(1,)]).replace_answer(Relation(("A",), [(9,)]))
        assert w["R"].rows == {(9,)}

    def test_answer_of_empty_world_raises(self):
        with pytest.raises(SchemaError):
            World.of({}).answer()


class TestWorldSet:
    def test_schema_consistency_enforced(self):
        with pytest.raises(SchemaError, match="share one schema"):
            WorldSet([world([(1,)]), world([(1,)], name="S")])

    def test_set_semantics_collapse(self):
        ws = WorldSet([world([(1,)]), world([(1,)])])
        assert len(ws) == 1

    def test_empty_world_set_keeps_declared_schema(self):
        schema = (("R", Relation(("A",)).schema),)
        ws = WorldSet.empty(schema)
        assert len(ws) == 0 and ws.signature == schema

    def test_the_world_requires_singleton(self):
        ws = WorldSet([world([(1,)]), world([(2,)])])
        with pytest.raises(SchemaError):
            ws.the_world()
        assert WorldSet.single(world([(1,)])).the_world()["R"].rows == {(1,)}

    def test_fresh_name_avoids_collisions(self):
        ws = WorldSet.single(world([(1,)], name="Q"))
        assert ws.fresh_name("Q") == "Q1"
        assert ws.fresh_name("Z") == "Z"

    def test_possible_and_certain(self):
        ws = WorldSet([world([(1,), (2,)]), world([(2,), (3,)])])
        assert ws.possible("R").rows == {(1,), (2,), (3,)}
        assert ws.certain("R").rows == {(2,)}

    def test_possible_aligns_column_orders(self):
        a = World.of({"R": Relation(("A", "B"), [(1, 2)])})
        ws = WorldSet([a])
        assert ws.possible("R").rows == {(1, 2)}

    def test_active_domain(self):
        ws = WorldSet([world([(1,)]), world([(7,)])])
        assert ws.active_domain() == frozenset({1, 7})

    def test_equality_ignores_attribute_order(self):
        a = WorldSet([World.of({"R": Relation(("A", "B"), [(1, 2)])})])
        b = WorldSet([World.of({"R": Relation(("B", "A"), [(2, 1)])})])
        assert a == b and hash(a) == hash(b)

    def test_extend_each_and_map_worlds(self):
        ws = WorldSet([world([(1,)]), world([(2,)])])
        extended = ws.extend_each("Q", lambda w: w["R"])
        assert extended.relation_names == ("R", "Q")
        collapsed = extended.map_worlds(
            lambda w: w.replace_answer(Relation(("A",), [(0,)]))
        )
        assert len(collapsed) == 2  # base still differs

    def test_sorted_worlds_deterministic(self):
        ws = WorldSet([world([(2,)]), world([(1,)])])
        first, second = ws.sorted_worlds()
        assert first["R"].rows == {(1,)}
