"""World-set isomorphism (Definition 4.3) and the search for θ."""

import pytest

from repro.relational import Relation
from repro.worlds import (
    World,
    WorldSet,
    apply_bijection,
    are_isomorphic,
    find_isomorphism,
)


def ws(*row_sets, attrs=("A",)):
    return WorldSet(
        [World.of({"R": Relation(attrs, rows)}) for rows in row_sets]
    )


class TestApplyBijection:
    def test_maps_values(self):
        mapped = apply_bijection(ws([(1,), (2,)]), {1: "x", 2: "y"})
        assert next(iter(mapped.worlds))["R"].rows == {("x",), ("y",)}

    def test_missing_values_kept(self):
        mapped = apply_bijection(ws([(1,), (2,)]), {1: 9})
        assert next(iter(mapped.worlds))["R"].rows == {(9,), (2,)}


class TestFindIsomorphism:
    def test_identity(self):
        a = ws([(1,)], [(2,)])
        theta = find_isomorphism(a, a)
        assert theta is not None
        assert apply_bijection(a, theta) == a

    def test_value_renaming_found(self):
        a = ws([(1,), (2,)], [(3,)])
        b = apply_bijection(a, {1: 10, 2: 20, 3: 30})
        theta = find_isomorphism(a, b)
        assert theta is not None
        assert apply_bijection(a, theta) == b

    def test_structure_mismatch_rejected(self):
        assert find_isomorphism(ws([(1,)], [(2,)]), ws([(1,), (2,)])) is None

    def test_different_world_counts_rejected(self):
        assert not are_isomorphic(ws([(1,)]), ws([(1,)], [(2,)]))

    def test_schema_mismatch_rejected(self):
        assert not are_isomorphic(ws([(1,)]), ws([(1, 2)], attrs=("A", "B")))

    def test_shared_values_across_worlds_constrain_search(self):
        # Worlds {1},{1,2} vs {3},{3,4}: 1 must map to 3.
        a = ws([(1,)], [(1,), (2,)])
        b = ws([(3,)], [(3,), (4,)])
        theta = find_isomorphism(a, b)
        assert theta == {1: 3, 2: 4}

    def test_non_isomorphic_same_cardinalities(self):
        # {1},{2} (disjoint) vs {1},{1} collapses — use different shape:
        a = ws([(1,), (2,)], [(2,), (3,)])  # chain sharing one value
        b = ws([(1,), (2,)], [(3,), (4,)])  # disjoint worlds
        assert not are_isomorphic(a, b)

    def test_multi_relation_worlds(self):
        def make(x, y):
            return World.of(
                {
                    "R": Relation(("A",), [(x,)]),
                    "S": Relation(("B",), [(y,)]),
                }
            )

        a = WorldSet([make(1, 2)])
        b = WorldSet([make("u", "v")])
        theta = find_isomorphism(a, b)
        assert theta == {1: "u", 2: "v"}


class TestCheckGeneric:
    def test_rejects_non_injective_theta(self):
        from repro.worlds import check_generic

        a = ws([(1,), (2,)])
        with pytest.raises(ValueError):
            check_generic(lambda w: w, a, {1: 0, 2: 0})
