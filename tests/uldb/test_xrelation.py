"""ULDB x-relations: alternatives, maybe, lineage, world enumeration."""

import pytest

from repro.errors import SchemaError
from repro.uldb import XRelation, XTuple


class TestConstruction:
    def test_alternatives_required(self):
        with pytest.raises(SchemaError):
            XTuple("t1", [])

    def test_arity_checked(self):
        relation = XRelation("R", ("A",))
        with pytest.raises(SchemaError):
            relation.add(XTuple("t1", [(1, 2)]))

    def test_lineage_must_align(self):
        with pytest.raises(SchemaError):
            XTuple("t1", [(1,), (2,)], lineage=[{("s1", 0)}])


class TestPossibleWorlds:
    def test_certain_tuple_single_world(self):
        relation = XRelation("R", ("A",), [XTuple("t1", [(1,)])])
        worlds = relation.possible_worlds()
        assert len(worlds) == 1
        assert next(iter(worlds.worlds))["R"].rows == {(1,)}

    def test_maybe_tuple_two_worlds(self):
        relation = XRelation("R", ("A",), [XTuple("t1", [(1,)], maybe=True)])
        worlds = relation.possible_worlds()
        assert {frozenset(w["R"].rows) for w in worlds.worlds} == {
            frozenset(),
            frozenset({(1,)}),
        }

    def test_alternatives_are_mutually_exclusive(self):
        relation = XRelation("R", ("A",), [XTuple("t1", [(1,), (2,)])])
        worlds = relation.possible_worlds()
        assert {frozenset(w["R"].rows) for w in worlds.worlds} == {
            frozenset({(1,)}),
            frozenset({(2,)}),
        }

    def test_lineage_on_conflicting_alternatives_never_cooccur(self):
        relation = XRelation("R", ("A",))
        relation.add(XTuple("t1", [(1,)], lineage=[{("s1", 0)}]))
        relation.add(XTuple("t2", [(2,)], lineage=[{("s1", 1)}]))
        worlds = relation.possible_worlds()
        for world in worlds.worlds:
            assert world["R"].rows != {(1,), (2,)}

    def test_shared_lineage_cooccurs(self):
        relation = XRelation("R", ("A",))
        relation.add(XTuple("t1", [(1,)], lineage=[{("s1", 0)}]))
        relation.add(XTuple("t2", [(2,)], lineage=[{("s1", 0)}]))
        worlds = relation.possible_worlds()
        assert any(w["R"].rows == {(1,), (2,)} for w in worlds.worlds)

    def test_external_ids_discovered(self):
        relation = XRelation("R", ("A",))
        relation.add(XTuple("t1", [(1,)], lineage=[{("s2", 1), ("s1", 0)}]))
        assert set(relation.external_ids()) == {"s1", "s2"}

    def test_two_independent_xtuples_product(self):
        relation = XRelation("R", ("A",))
        relation.add(XTuple("t1", [(1,), (2,)]))
        relation.add(XTuple("t2", [(3,)], maybe=True))
        assert len(relation.possible_worlds()) == 4
