"""Remark 4.6: TriQL on ULDBs is not generic."""

from repro.uldb import (
    XRelation,
    XTuple,
    horizontal_exists,
    remark_46_instances,
    remark_46_query,
    select_where_horizontal,
)
from repro.worlds import are_isomorphic


class TestHorizontalSelection:
    def test_exists_compares_alternative_pairs(self):
        two = XTuple("t", [(1,), (2,)])
        one = XTuple("t", [(1,)])
        predicate = lambda a, b: a[0] != b[0]
        assert horizontal_exists(two, predicate)
        assert not horizontal_exists(one, predicate)

    def test_selection_keeps_structure(self):
        relation = XRelation("R", ("A",))
        relation.add(XTuple("t1", [(1,), (2,)], maybe=True))
        relation.add(XTuple("t2", [(3,)]))
        result = select_where_horizontal(relation, lambda a, b: a[0] != b[0])
        assert [x.tid for x in result.tuples] == ["t1"]
        assert result.tuples[0].maybe


class TestRemark46:
    def test_u1_u2_represent_the_same_worlds(self):
        u1, u2 = remark_46_instances()
        w1, w2 = u1.possible_worlds(), u2.possible_worlds()
        assert w1 == w2  # isomorphic under the identity bijection
        assert len(w1) == 3

    def test_query_answers_differ(self):
        """q(U1) keeps t1; q(U2) selects nothing — the world-sets of the
        answers are not isomorphic, so TriQL reads the representation."""
        u1, u2 = remark_46_instances()
        a1 = remark_46_query(u1).possible_worlds()
        a2 = remark_46_query(u2).possible_worlds()
        assert a1 != a2
        assert not are_isomorphic(a1, a2)
        assert len(a1) == 3 and len(a2) == 1

    def test_wsa_on_the_same_worlds_is_generic(self):
        """Contrast: any world-set algebra query treats U1 and U2 alike,
        because it only sees the represented world-set."""
        from repro.core import evaluate, poss, rel, select
        from repro.relational import neq

        u1, u2 = remark_46_instances()
        query = poss(rel("R"))
        r1 = evaluate(query, u1.possible_worlds(), name="Q")
        r2 = evaluate(query, u2.possible_worlds(), name="Q")
        assert r1 == r2
