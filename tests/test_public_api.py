"""The package façade: everything advertised in ``repro.__all__`` works."""

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestQuickstart:
    def test_readme_quickstart(self):
        """The README / module docstring example, verbatim."""
        from repro import ISQLSession
        from repro.datagen import paper_flights

        session = ISQLSession()
        session.register("Flights", paper_flights())
        result = session.query(
            "select certain Arr from Flights choice of Dep;"
        )
        assert result.relation.sorted_rows() == [("ATL",)]

    def test_algebra_quickstart(self):
        from repro import answer, cert, choice_of, project, rel
        from repro.datagen import paper_flights
        from repro.worlds import World, WorldSet

        ws = WorldSet.single(World.of({"Flights": paper_flights()}))
        query = cert(project("Arr", choice_of("Dep", rel("Flights"))))
        assert answer(query, ws).sorted_rows() == [("ATL",)]

    def test_translation_quickstart(self):
        from repro import optimized_ra_query, cert, choice_of, project, rel
        from repro.datagen import paper_flights
        from repro.relational import Database

        db = Database({"Flights": paper_flights()})
        query = cert(project("Arr", choice_of("Dep", rel("Flights"))))
        expr = optimized_ra_query(query, db.schemas(), assume_nonempty=True)
        assert expr.evaluate(db).sorted_rows() == [("ATL",)]

    def test_error_hierarchy(self):
        from repro import (
            EvaluationError,
            ParseError,
            ReproError,
            SchemaError,
            TranslationError,
            TypingError,
        )

        for error in (
            EvaluationError,
            ParseError,
            SchemaError,
            TranslationError,
            TypingError,
        ):
            assert issubclass(error, ReproError)
