"""lower_query: derived operators expand to the Figure 3 base operators."""

from repro.core import (
    cert,
    divide,
    evaluate,
    natural_join,
    project,
    rel,
    rename,
    theta_join,
)
from repro.core.ast import (
    Difference,
    Divide,
    NaturalJoin,
    Product,
    Project,
    Select,
    ThetaJoin,
    _NaturalJoinExpansion,
)
from repro.datagen import random_world_set
from repro.inline.translate import lower_query
from repro.relational import Schema, eq

ENV = {"R": Schema(("A", "B")), "S": Schema(("B", "C"))}


class TestLowering:
    def test_theta_join_becomes_select_product(self):
        query = theta_join(
            eq("A", "C"), rel("R"), rename({"B": "B2"}, rel("S"))
        )
        lowered = lower_query(query, ENV)
        assert isinstance(lowered, Select)
        assert isinstance(lowered.child, Product)

    def test_natural_join_expands_fully(self):
        lowered = lower_query(natural_join(rel("R"), rel("S")), ENV)
        assert not any(
            isinstance(node, (NaturalJoin, _NaturalJoinExpansion, ThetaJoin))
            for node in lowered.walk()
        )
        assert isinstance(lowered, Project)

    def test_divide_expands_to_differences(self):
        query = divide(rel("R"), project("B", rel("R")))
        lowered = lower_query(query, ENV)
        assert not any(isinstance(node, Divide) for node in lowered.walk())
        assert any(isinstance(node, Difference) for node in lowered.walk())

    def test_base_operators_unchanged(self):
        query = cert(project("A", rel("R")))
        assert lower_query(query, ENV) == query

    def test_nested_derived_operators(self):
        inner = natural_join(rel("R"), rel("S"))
        query = theta_join(
            eq("A", "A2"),
            inner,
            rename({"A": "A2", "B": "B2", "C": "C2"}, inner),
        )
        lowered = lower_query(query, ENV)
        assert not any(
            isinstance(node, (NaturalJoin, _NaturalJoinExpansion, ThetaJoin))
            for node in lowered.walk()
        )


class TestLoweringPreservesSemantics:
    def test_on_random_world_sets(self):
        schemas = {"R": ("A", "B"), "S": ("B", "C")}
        env = {name: Schema(attrs) for name, attrs in schemas.items()}
        queries = [
            natural_join(rel("R"), rel("S")),
            divide(rel("R"), project("B", rel("R"))),
            theta_join(eq("A", "C"), rel("R"), rename({"B": "B2"}, rel("S"))),
        ]
        for seed in range(25):
            ws = random_world_set(seed, schemas=schemas)
            for query in queries:
                lowered = lower_query(query, env)
                assert evaluate(query, ws, name="Q") == evaluate(
                    lowered, ws, name="Q"
                ), query.to_text()
