"""InlinedRepresentation edge cases (Definition 5.1 boundary forms).

Three degenerate shapes the definition explicitly permits:

* an empty world table W = ∅ — the empty world-set;
* a nullary W = {⟨⟩} — a single complete world (V = ∅);
* world ids present in W but absent from every table — worlds whose
  relations are all empty.

Each is round-tripped through ``rep()`` and through an
``InlineBackend``-backed session seeded with the representation.
"""

import pytest

from repro.backend import InlineBackend
from repro.errors import RepresentationError
from repro.inline import InlinedRepresentation
from repro.isql import ISQLSession
from repro.relational import Relation, Schema
from repro.worlds import World, WorldSet


def backend_session(representation: InlinedRepresentation) -> ISQLSession:
    return ISQLSession(backend=InlineBackend(representation))


class TestEmptyWorldTable:
    def rep(self):
        return InlinedRepresentation(
            {"R": Relation(("A", "$w"), ())},
            Relation(("$w",), ()),
            ("$w",),
        )

    def test_rep_is_the_empty_world_set(self):
        decoded = self.rep().rep()
        assert len(decoded) == 0
        assert decoded.signature == (("R", Schema(("A",))),)

    def test_backend_reports_zero_worlds(self):
        session = backend_session(self.rep())
        assert session.world_count() == 0
        assert len(session.world_set) == 0

    def test_queries_decode_to_no_worlds(self):
        session = backend_session(self.rep())
        result = session.query("select possible A from R;")
        assert result.world_count() == 0
        assert result.possible().rows == set()


class TestNullaryWorldTable:
    def rep(self):
        return InlinedRepresentation(
            {"R": Relation(("A",), [(1,), (2,)])}, Relation.unit(), ()
        )

    def test_rep_is_a_single_complete_world(self):
        decoded = self.rep().rep()
        assert decoded == WorldSet.single(
            World.of({"R": Relation(("A",), [(1,), (2,)])})
        )

    def test_backend_round_trip(self):
        session = backend_session(self.rep())
        assert session.world_count() == 1
        assert session.query("select certain A from R;").relation.rows == {
            (1,),
            (2,),
        }

    def test_initial_state_is_the_nullary_form(self):
        initial = InlinedRepresentation.initial()
        assert initial.world_table == Relation.unit()
        assert initial.rep() == WorldSet.single(World.of({}))


class TestDanglingWorldIds:
    """Ids in W with no rows in any table: worlds with empty relations."""

    def rep(self):
        return InlinedRepresentation(
            {"R": Relation(("A", "$w"), [(1, 0)])},
            Relation(("$w",), [(0,), (1,)]),
            ("$w",),
        )

    def test_rep_keeps_the_empty_world(self):
        decoded = self.rep().rep()
        assert decoded == WorldSet(
            [
                World.of({"R": Relation(("A",), [(1,)])}),
                World.of({"R": Relation(("A",), ())}),
            ]
        )

    def test_backend_counts_both_worlds(self):
        session = backend_session(self.rep())
        assert session.world_count() == 2

    def test_certain_respects_the_empty_world(self):
        session = backend_session(self.rep())
        result = session.query("select certain A from R;")
        assert result.relation.rows == set()
        possible = session.query("select possible A from R;")
        assert possible.relation.rows == {(1,)}

    def test_duplicate_ids_collapse_in_rep_but_not_in_world_count(self):
        representation = InlinedRepresentation(
            {"R": Relation(("A", "$w"), ())},
            Relation(("$w",), [(0,), (1,)]),
            ("$w",),
        )
        assert representation.world_count() == 2  # ids counted apart
        assert representation.distinct_world_count() == 1  # worlds collapse
        assert len(representation.rep()) == 1


class TestValidation:
    def test_table_referencing_unknown_world_id_rejected(self):
        with pytest.raises(RepresentationError, match="not in the world table"):
            InlinedRepresentation(
                {"R": Relation(("A", "$w"), [(1, 99)])},
                Relation(("$w",), [(0,)]),
                ("$w",),
            )

    def test_subset_tables_round_trip_through_strict(self):
        lazy = InlinedRepresentation(
            {"R": Relation(("A",), [(1,)])},
            Relation(("$w",), [(0,), (1,)]),
            ("$w",),
        )
        strict = lazy.strict()
        assert strict.table_id_attrs("R") == ("$w",)
        assert len(strict.tables["R"]) == 2  # replicated per world
        assert strict.rep() == lazy.rep()
