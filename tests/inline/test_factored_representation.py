"""The factored per-group world-id encoding (ISSUE 8).

``FactoredWorld`` keeps independent choices as independent factor
relations — a world is a point in their product, which is never
materialized unless a consumer genuinely correlates the factors. This
pins the factored ``InlinedRepresentation`` contract:

* validation checks membership per factor and names the offending
  *factor column* deterministically in the dangling-id error;
* ``insert_sub_ids`` enumerates only the touched factors' product,
  never the joint world table;
* ``repair by key`` mints one fresh wild factor per violating key
  group, so the representation is *sum*-sized;
* pairing — the one operation that correlates every world with every
  other — drops to the joint form explicitly (the escape hatch).
"""

import pytest

from repro.backend import InlineBackend
from repro.errors import RepresentationError
from repro.inline.factors import FactoredWorld
from repro.inline.pairing import pair_on_inlined
from repro.inline.representation import InlinedRepresentation
from repro.isql.session import ISQLSession
from repro.relational.pad import PAD
from repro.relational.relation import Relation

FI = Relation(("I",), [(0,), (1,)])
FJ = Relation(("J",), [(0,), (1,), (2,)])


def _rep(table_rows, wild_attrs=()):
    table = Relation(("A", "I", "J"), table_rows)
    return InlinedRepresentation(
        [("R", table)],
        None,
        ("I", "J"),
        factors=FactoredWorld((FI, FJ)),
        wild_attrs=frozenset(wild_attrs),
    )


# -- FactoredWorld basics -----------------------------------------------------------


def test_factored_world_counts_the_product_without_materializing():
    world = FactoredWorld((FI, FJ))
    assert world.count() == 6
    assert world._materialized is None  # counting never built the product


def test_factored_world_materialize_is_cached_and_equals_the_product():
    world = FactoredWorld((FI, FJ))
    joint = world.materialize()
    assert joint is world.materialize()
    assert set(joint.rows) == {(i, j) for (i,) in FI.rows for (j,) in FJ.rows}


def test_factored_world_project_keeps_only_touched_factors():
    world = FactoredWorld((FI, FJ))
    projected = world.project(("J",))
    assert projected.factors == (FJ,)


def test_factored_world_rejects_overlapping_factor_attributes():
    with pytest.raises(RepresentationError):
        FactoredWorld((FI, Relation(("I",), [(9,)])))


# -- validation: dangling ids name the offending factor column ----------------------


def test_dangling_factor_id_names_the_factor_column():
    with pytest.raises(RepresentationError) as info:
        _rep([("x", 0, 1), ("y", 5, 2), ("z", 7, 0)])
    message = str(info.value)
    assert "table 'R'" in message
    assert "(factor column 'I')" in message
    # Deterministic: the smallest dangling sub-id is reported, not an
    # arbitrary set element.
    assert "(5,)" in message and "(7,)" not in message


def test_dangling_id_in_second_factor_names_that_column():
    with pytest.raises(RepresentationError) as info:
        _rep([("x", 0, 9)])
    assert "(factor column 'J')" in str(info.value)


def test_pad_in_non_wild_factor_column_is_dangling():
    with pytest.raises(RepresentationError) as info:
        _rep([("x", PAD, 1)])
    assert "(factor column 'I')" in str(info.value)


def test_pad_in_wild_factor_column_validates():
    rep = _rep([("x", PAD, 1)], wild_attrs=("I",))
    assert rep.wild_attrs == frozenset({"I"})


def test_multi_attribute_factor_phrase_lists_the_columns():
    pair_factor = Relation(("I", "J"), [(0, 0), (1, 1)])
    table = Relation(("A", "I", "J"), [("x", 0, 1)])
    with pytest.raises(RepresentationError) as info:
        InlinedRepresentation(
            [("R", table)],
            None,
            ("I", "J"),
            factors=FactoredWorld((pair_factor,)),
        )
    assert "factor columns ['I', 'J']" in str(info.value)


# -- insert_sub_ids stays off the joint product -------------------------------------


def test_insert_sub_ids_enumerates_the_touched_factor_product():
    rep = _rep([("x", 0, 1)])
    assert sorted(rep.insert_sub_ids("R")) == [
        (i, j) for (i,) in sorted(FI.rows) for (j,) in sorted(FJ.rows)
    ]
    # The enumeration went through the factors, not through a
    # materialized joint world table.
    assert rep._world_table is None


def test_insert_sub_ids_on_wild_table_pads_the_wild_columns():
    rep = _rep([("x", PAD, 1)], wild_attrs=("I",))
    assert set(rep.insert_sub_ids("R")) == {(PAD, 0), (PAD, 1), (PAD, 2)}


# -- repair by key mints per-group factors ------------------------------------------


def _repaired_session():
    session = ISQLSession(backend=InlineBackend())
    session.register(
        "R",
        Relation(
            ("K", "A"),
            [(1, "x"), (1, "y"), (2, "z"), (3, "p"), (3, "q"), (3, "r")],
        ),
    )
    session.run_script("Clean <- select * from R repair by key K;")
    return session


def test_repair_by_key_mints_one_wild_factor_per_violating_group():
    session = _repaired_session()
    rep = session.backend.representation
    assert rep.factors is not None
    sizes = sorted(len(factor) for factor in rep.factors.factors)
    assert sizes == [2, 3]  # one factor per group, one row per candidate
    assert rep.wild_attrs == frozenset(rep.id_attrs)
    assert session.world_count() == 6  # 2 × 3, counted as a product


def test_repaired_representation_is_sum_sized():
    session = _repaired_session()
    rep = session.backend.representation
    # R (6 rows) + Clean (6 rows) + the 2+3 factor rows — the world
    # tables contribute the *sum* of the factor sizes, not the 6-row
    # joint product (which would also expand Clean per world).
    assert rep.size() == len(rep.tables["R"]) + len(rep.tables["Clean"]) + 5
    assert rep.size() < rep.materialized().size()


def test_materialized_drops_to_the_joint_encoding():
    rep = _repaired_session().backend.representation
    joint = rep.materialized()
    assert joint.factors is None
    assert not joint.wild_attrs
    assert len(joint.world_table) == 6
    # Same worlds, different encoding.
    assert joint.world_fingerprints() == rep.world_fingerprints()


# -- pairing is the explicit escape hatch to the joint form -------------------------


def test_pairing_a_factored_representation_goes_joint():
    rep = _repaired_session().backend.representation
    paired = pair_on_inlined(rep, "Clean", "Clean2")
    assert paired.factors is None
    assert len(paired.world_table) == 36  # every world paired with every world
    assert "Clean2" in paired.tables.names
