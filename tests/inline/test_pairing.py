"""Section 7: world-pairing is RA-expressible on inlined reps, not in WSA."""

import pytest

from repro.errors import RepresentationError
from repro.inline import (
    InlinedRepresentation,
    pair_on_inlined,
    pair_worlds,
    subset_world_set,
)
from repro.relational import Relation
from repro.worlds import World, WorldSet


class TestSubsetWitness:
    def test_all_subsets_enumerated(self):
        ws = subset_world_set([1, 2, 3])
        assert len(ws) == 8

    def test_empty_value_list(self):
        assert len(subset_world_set([])) == 1


class TestPairWorlds:
    def test_squares_the_world_count(self):
        ws = subset_world_set([1, 2])
        paired = pair_worlds(ws, "R", "R2")
        assert len(paired) == len(ws) ** 2

    def test_pairs_carry_both_relations(self):
        ws = WorldSet(
            [
                World.of({"R": Relation(("A",), [(1,)])}),
                World.of({"R": Relation(("A",), [(2,)])}),
            ]
        )
        paired = pair_worlds(ws, "R", "R2")
        combos = {
            (frozenset(w["R"].rows), frozenset(w["R2"].rows))
            for w in paired.worlds
        }
        assert combos == {
            (frozenset({(1,)}), frozenset({(1,)})),
            (frozenset({(1,)}), frozenset({(2,)})),
            (frozenset({(2,)}), frozenset({(1,)})),
            (frozenset({(2,)}), frozenset({(2,)})),
        }

    def test_existing_name_rejected(self):
        ws = subset_world_set([1])
        with pytest.raises(RepresentationError):
            pair_worlds(ws, "R", "R")


class TestPairOnInlined:
    def test_matches_world_level_pairing(self):
        """The RA implementation agrees with the semantic definition."""
        ws = subset_world_set([1, 2])
        rep = InlinedRepresentation.of_world_set(ws)
        paired_rep = pair_on_inlined(rep, "R", "R2")
        semantic = pair_worlds(ws, "R", "R2")
        assert paired_rep.rep() == semantic

    def test_doubles_the_id_attributes(self):
        rep = InlinedRepresentation.of_world_set(subset_world_set([1]))
        paired = pair_on_inlined(rep, "R", "R2")
        assert len(paired.id_attrs) == 2 * len(rep.id_attrs)

    def test_exponential_gap_shape(self):
        """|pairing(2ⁿ subsets)| = 4ⁿ: the Section 7 counting argument."""
        for n in (1, 2, 3):
            ws = subset_world_set(list(range(n)))
            rep = InlinedRepresentation.of_world_set(ws)
            assert pair_on_inlined(rep, "R", "R2").world_count() == 4**n
