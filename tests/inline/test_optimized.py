"""Section 5.3: the optimized complete-to-complete translation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TranslationError, TypingError
from repro.core import (
    answer,
    cert,
    choice_of,
    is_complete_to_complete,
    poss,
    project,
    rel,
    repair_by_key,
    select,
)
from repro.datagen import random_query, random_world_set
from repro.inline import evaluate_optimized, optimized_ra_query
from repro.relational import Const, Database, Relation, Table, eq
from repro.worlds import World, WorldSet

seeds = st.integers(0, 50_000)


class TestExample58:
    def test_verbatim_form(self, hflights_db):
        """π_{Arr,Dep}(HFlights) ÷ π_{Dep}(HFlights), as printed."""
        query = cert(project("Arr", choice_of("Dep", rel("HFlights"))))
        expr = optimized_ra_query(query, hflights_db.schemas(), assume_nonempty=True)
        assert expr.to_text() == "(π[Arr,Dep](HFlights) ÷ π[Dep](HFlights))"
        assert expr.evaluate(hflights_db).rows == {("ATL",)}

    def test_default_form_keeps_empty_world_guard(self, hflights_db):
        query = cert(project("Arr", choice_of("Dep", rel("HFlights"))))
        expr = optimized_ra_query(query, hflights_db.schemas())
        assert "=⊳⊲" in expr.to_text()
        assert expr.evaluate(hflights_db).rows == {("ATL",)}

    def test_both_forms_agree_on_empty_input(self):
        query = cert(project("Arr", choice_of("Dep", rel("HFlights"))))
        empty = Database({"HFlights": Relation(("Dep", "Arr"))})
        schemas = empty.schemas()
        default = optimized_ra_query(query, schemas).evaluate(empty)
        compact = optimized_ra_query(query, schemas, assume_nonempty=True).evaluate(empty)
        assert default == compact == Relation(("Arr",))


class TestPassThrough:
    def test_pure_ra_query_translates_to_itself(self, hflights_db):
        """§5.3: a relational algebra query passes through unchanged."""
        query = project("Arr", select(eq("Dep", Const("FRA")), rel("HFlights")))
        expr = optimized_ra_query(query, hflights_db.schemas())
        assert expr.to_text() == "π[Arr](σ[Dep='FRA'](HFlights))"

    def test_base_relation_passes_through(self, hflights_db):
        assert optimized_ra_query(rel("HFlights"), hflights_db.schemas()) == Table(
            "HFlights"
        )

    def test_poss_on_complete_data_disappears(self, hflights_db):
        """Example 6.2's closing remark: poss over one world is dropped
        by translation (its answer needs no world ids)."""
        query = poss(project("Arr", rel("HFlights")))
        expr = optimized_ra_query(query, hflights_db.schemas())
        assert expr.to_text() == "π[Arr](HFlights)"


@given(seeds)
@settings(max_examples=150, deadline=None)
def test_optimized_matches_reference_semantics_on_c2c_queries(seed):
    world_set = random_world_set(seed, max_worlds=1)
    query = random_query(seed * 17 + 3, depth=3)
    if not is_complete_to_complete(query):
        return
    db = Database(dict(world_set.the_world().items()))
    assert evaluate_optimized(query, db) == answer(query, world_set)


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_optimized_is_smaller_than_general(seed):
    """The §5.3 queries are never larger than the Figure 6 queries."""
    from repro.inline import conservative_ra_query

    query = random_query(seed * 29 + 11, depth=3)
    if not is_complete_to_complete(query):
        return
    schemas = {"R": ("A", "B"), "S": ("C", "D")}
    optimized = optimized_ra_query(query, schemas)
    general = conservative_ra_query(query, schemas)
    assert optimized.size() <= general.size()


class TestRejections:
    def test_non_c2c_rejected(self):
        with pytest.raises(TypingError):
            optimized_ra_query(choice_of("A", rel("R")), {"R": ("A", "B")})

    def test_repair_rejected(self):
        with pytest.raises(TranslationError):
            optimized_ra_query(
                poss(repair_by_key("A", rel("R"))), {"R": ("A", "B")}
            )


class TestGroupingOnSingleWorld:
    def test_group_worlds_by_degenerates_to_projection(self, hflights_db):
        from repro.core import poss_group

        query = poss(poss_group(("Dep",), ("Arr",), rel("HFlights")))
        expr = optimized_ra_query(query, hflights_db.schemas())
        assert expr.to_text() == "π[Arr](HFlights)"

    def test_grouping_over_choice_translates(self, hflights_db):
        from repro.core import cert_group

        query = poss(
            cert_group(("Dep",), ("Arr",), choice_of("Dep", rel("HFlights")))
        )
        ws = WorldSet.single(World.of(dict(hflights_db.items())))
        assert evaluate_optimized(query, hflights_db) == answer(query, ws)
