"""Theorem 5.7 and Figure 6: the general translation is semantics-preserving.

The property suites compare, on randomized world-sets and queries, the
decoded output of the translated relational queries against the Figure 3
reference semantics — the strongest correctness statement in the paper.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TranslationError, TypingError
from repro.core import (
    cert,
    cert_group,
    choice_of,
    difference,
    evaluate,
    intersect,
    poss,
    poss_group,
    product,
    project,
    rel,
    rename,
    repair_by_key,
    select,
    union,
)
from repro.core.ast import active_domain
from repro.datagen import random_query, random_world_set
from repro.inline import InlinedRepresentation, apply_general, conservative_ra_query
from repro.relational import Const, Database, Relation, eq
from repro.worlds import World, WorldSet

seeds = st.integers(0, 50_000)


@given(seeds)
@settings(max_examples=120, deadline=None)
def test_general_translation_matches_reference_semantics(seed):
    world_set = random_world_set(seed)
    query = random_query(seed * 7 + 1, depth=3)
    direct = evaluate(query, world_set, name="Q")
    rep = InlinedRepresentation.of_world_set(world_set)
    assert apply_general(query, rep, name="Q").rep() == direct


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_translation_from_complete_database(seed):
    """Complete inputs use the nullary world table W = {⟨⟩}."""
    world_set = random_world_set(seed, max_worlds=1)
    query = random_query(seed * 11 + 5, depth=4)
    direct = evaluate(query, world_set, name="Q")
    rep = InlinedRepresentation.of_database(
        Database(dict(world_set.the_world().items()))
    )
    assert apply_general(query, rep, name="Q").rep() == direct


class TestPerOperator:
    """Targeted single-operator translations on a worked world-set."""

    @pytest.fixture
    def ws(self):
        return WorldSet(
            [
                World.of({"R": Relation(("A", "B"), [(1, 2), (2, 2)])}),
                World.of({"R": Relation(("A", "B"), [(1, 3)])}),
            ]
        )

    @pytest.mark.parametrize(
        "query",
        [
            rel("R"),
            select(eq("A", Const(1)), rel("R")),
            project("B", rel("R")),
            rename({"A": "X"}, rel("R")),
            poss(rel("R")),
            cert(rel("R")),
            choice_of("A", rel("R")),
            choice_of(("A", "B"), rel("R")),
            poss_group(("B",), ("A", "B"), rel("R")),
            cert_group(("B",), ("A", "B"), rel("R")),
            poss_group((), ("A",), rel("R")),
            union(rel("R"), rel("R")),
            intersect(rel("R"), select(eq("A", Const(1)), rel("R"))),
            difference(rel("R"), select(eq("A", Const(1)), rel("R"))),
            product(rel("R"), rename({"A": "A2", "B": "B2"}, rel("R"))),
            poss(choice_of("A", rel("R"))),
            cert(project("B", choice_of("A", rel("R")))),
            union(choice_of("A", rel("R")), choice_of("B", rel("R"))),
            product(
                choice_of("A", rel("R")),
                rename({"A": "A2", "B": "B2"}, choice_of("B", rel("R"))),
            ),
        ],
        ids=lambda q: q.to_text(),
    )
    def test_operator(self, ws, query):
        rep = InlinedRepresentation.of_world_set(ws)
        assert apply_general(query, rep, name="Q").rep() == evaluate(
            query, ws, name="Q"
        )


class TestConservativity:
    """Theorem 5.7: 1↦1 queries equal a relational algebra query."""

    @given(seeds)
    @settings(max_examples=100, deadline=None)
    def test_ra_query_computes_the_answer(self, seed):
        from repro.core import answer, is_complete_to_complete

        world_set = random_world_set(seed, max_worlds=1)
        query = random_query(seed * 17 + 3, depth=3)
        if not is_complete_to_complete(query):
            return
        db = Database(dict(world_set.the_world().items()))
        ra_query = conservative_ra_query(query, db.schemas())
        assert ra_query.evaluate(db) == answer(query, world_set)

    def test_rejects_non_c2c_queries(self):
        with pytest.raises(TypingError, match="1↦1"):
            conservative_ra_query(choice_of("A", rel("R")), {"R": ("A", "B")})

    def test_polynomial_size(self):
        """The translated query grows polynomially with query size."""
        sizes = []
        query = rel("R")
        for _ in range(6):
            query = choice_of("A", query)
            c2c = cert(project("A", query))
            sizes.append(
                conservative_ra_query(c2c, {"R": ("A", "B")}).size()
            )
        growth = [b - a for a, b in zip(sizes, sizes[1:])]
        # Linear nesting growth ⇒ bounded size increments (no blow-up).
        assert max(growth) <= 4 * max(sizes[0], 1)


class TestUntranslatable:
    def test_repair_by_key_rejected(self, flights_db):
        rep = InlinedRepresentation.of_database(flights_db)
        with pytest.raises(TranslationError, match="repair-by-key"):
            apply_general(repair_by_key("Dep", rel("Flights")), rep)

    def test_active_domain_rejected(self, flights_db):
        rep = InlinedRepresentation.of_database(flights_db)
        with pytest.raises(TranslationError, match="active-domain"):
            apply_general(poss(active_domain(("X",))), rep)
