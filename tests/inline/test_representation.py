"""Definition 5.1: inlined representations and rep() decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RepresentationError
from repro.datagen import random_world_set
from repro.inline import InlinedRepresentation
from repro.relational import Database, Relation
from repro.worlds import World, WorldSet


class TestFigure4:
    """Figure 4: RT(A,V) = {(1,1),(3,1),(1,2)}, W = {1,2,3}."""

    @pytest.fixture
    def representation(self):
        table = Relation(("A", "$V"), [(1, 1), (3, 1), (1, 2)])
        world_table = Relation(("$V",), [(1,), (2,), (3,)])
        return InlinedRepresentation({"R": table}, world_table, ("$V",))

    def test_decodes_the_three_worlds(self, representation):
        decoded = representation.rep()
        answers = {world["R"] for world in decoded.worlds}
        assert answers == {
            Relation(("A",), [(1,), (3,)]),
            Relation(("A",), [(1,)]),
            Relation(("A",), []),
        }

    def test_world_lookup_by_id(self, representation):
        assert representation.world((3,))["R"].rows == set()
        assert representation.world((1,))["R"].rows == {(1,), (3,)}

    def test_value_attributes(self, representation):
        assert representation.value_attributes("R") == ("A",)

    def test_world_count_counts_ids(self, representation):
        assert representation.world_count() == 3


class TestValidation:
    def test_tables_may_carry_a_subset_of_id_attributes(self):
        """The lazy §5.3 form: an id-free table lives in every world."""
        representation = InlinedRepresentation(
            {"R": Relation(("A",), [(1,)])},
            Relation(("$V",), [(1,), (2,)]),
            ("$V",),
        )
        for world in representation.rep().worlds:
            assert world["R"].rows == {(1,)}

    def test_undeclared_id_attributes_rejected(self):
        with pytest.raises(RepresentationError, match="undeclared id"):
            InlinedRepresentation(
                {"R": Relation(("A", "$other"), [(1, 0)])},
                Relation(("$V",), [(1,)]),
                ("$V",),
            )

    def test_dangling_world_ids_rejected(self):
        with pytest.raises(RepresentationError, match="not in the world table"):
            InlinedRepresentation(
                {"R": Relation(("A", "$V"), [(1, 7)])},
                Relation(("$V",), [(1,)]),
                ("$V",),
            )

    def test_world_table_attrs_must_match_ids(self):
        with pytest.raises(RepresentationError):
            InlinedRepresentation(
                {}, Relation(("$V",), [(1,)]), ("$other",)
            )

    def test_world_table_may_have_extra_ids(self):
        """W may contain ids absent from every table (empty worlds)."""
        rep = InlinedRepresentation(
            {"R": Relation(("A", "$V"), [(1, 1)])},
            Relation(("$V",), [(1,), (2,)]),
            ("$V",),
        )
        assert len(rep.rep()) == 2


class TestEncodings:
    def test_complete_database_has_nullary_world_table(self, flights_db):
        rep = InlinedRepresentation.of_database(flights_db)
        assert rep.id_attrs == ()
        assert rep.world_table == Relation.unit()
        assert rep.rep() == WorldSet.single(World.of(dict(flights_db.items())))

    def test_empty_world_table_encodes_empty_world_set(self):
        rep = InlinedRepresentation(
            {"R": Relation(("A", "$V"), [])}, Relation(("$V",), []), ("$V",)
        )
        assert len(rep.rep()) == 0

    def test_of_world_set_requires_id_prefix(self, flights_ws):
        with pytest.raises(RepresentationError):
            InlinedRepresentation.of_world_set(flights_ws, id_attr="world")

    def test_as_database_includes_world_table(self, flights_db):
        from repro.inline import WORLD_TABLE

        rep = InlinedRepresentation.of_database(flights_db)
        assert WORLD_TABLE in rep.as_database()

    def test_equality(self, flights_db):
        a = InlinedRepresentation.of_database(flights_db)
        b = InlinedRepresentation.of_database(flights_db)
        assert a == b and hash(a) == hash(b)


@given(st.integers(0, 5_000))
@settings(max_examples=100, deadline=None)
def test_encode_decode_roundtrip(seed):
    """rep(of_world_set(A)) = A for arbitrary world-sets."""
    world_set = random_world_set(seed)
    rep = InlinedRepresentation.of_world_set(world_set)
    assert rep.rep() == world_set


def test_roundtrip_keeps_equivalent_worlds_as_one():
    """Equivalent worlds under different ids collapse in rep()."""
    table = Relation(("A", "$V"), [(1, 1), (1, 2)])
    world_table = Relation(("$V",), [(1,), (2,)])
    rep = InlinedRepresentation({"R": table}, world_table, ("$V",))
    assert rep.world_count() == 2
    assert len(rep.rep()) == 1
