"""The §8 physical operators: correctness against the Figure 3 semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TranslationError
from repro.core import (
    answer,
    answers,
    cert,
    cert_group,
    choice_of,
    evaluate,
    is_complete_to_complete,
    poss,
    poss_group,
    project,
    rel,
    repair_by_key,
    select,
)
from repro.core.ast import active_domain
from repro.datagen import random_query, random_world_set
from repro.inline import PhysicalEvaluator, physical_answer
from repro.relational import Const, Database, Relation, eq
from repro.worlds import World, WorldSet


def _db(world_set):
    return Database(dict(world_set.the_world().items()))


@given(st.integers(0, 50_000))
@settings(max_examples=150, deadline=None)
def test_physical_matches_reference_on_c2c_queries(seed):
    world_set = random_world_set(seed, max_worlds=1)
    query = random_query(seed * 23 + 9, depth=3)
    if not is_complete_to_complete(query):
        return
    assert physical_answer(query, _db(world_set)) == answer(query, world_set)


@given(st.integers(0, 20_000))
@settings(max_examples=80, deadline=None)
def test_physical_open_queries_decode_to_reference_answers(seed):
    """Per-world answers match the reference, including empty worlds."""
    from repro.relational import Schema

    world_set = random_world_set(seed, max_worlds=1)
    inner = random_query(seed + 5, depth=2)
    env = {"R": Schema(("A", "B")), "S": Schema(("C", "D"))}
    choice_attr = inner.attributes(env)[0]
    query = choice_of(choice_attr, inner)
    state = PhysicalEvaluator(_db(world_set)).evaluate(query)
    physical = frozenset(state.answers_by_world().values())
    reference = answers(query, world_set)
    assert physical == reference


class TestRepairByKeyPhysically:
    """The operator the relational translation cannot express."""

    def test_c2c_repair_query(self):
        db = Database({"R": Relation(("K", "V"), [(1, "a"), (1, "b"), (2, "c")])})
        query = cert(project("K", repair_by_key("K", rel("R"))))
        ws = WorldSet.single(World.of(dict(db.items())))
        assert physical_answer(query, db) == answer(query, ws)

    def test_possible_after_repair(self):
        db = Database({"R": Relation(("K", "V"), [(1, "a"), (1, "b")])})
        query = poss(repair_by_key("K", rel("R")))
        ws = WorldSet.single(World.of(dict(db.items())))
        assert physical_answer(query, db) == answer(query, ws)

    def test_repair_world_count(self):
        db = Database({"R": Relation(("K", "V"), [(1, "a"), (1, "b"), (2, "c")])})
        state = PhysicalEvaluator(db).evaluate(repair_by_key("K", rel("R")))
        assert len(state.world_or_unit()) == 2
        assert len(state.answers_by_world()) == 2

    def test_repair_guard(self):
        rows = [(i // 2, i) for i in range(20)]
        db = Database({"R": Relation(("K", "V"), rows)})
        with pytest.raises(TranslationError, match="worlds"):
            PhysicalEvaluator(db, max_worlds=50).evaluate(
                repair_by_key("K", rel("R"))
            )

    def test_repair_after_choice(self):
        db = Database({"R": Relation(("K", "V"), [(1, "a"), (1, "b"), (2, "c")])})
        query = cert(project("K", repair_by_key("K", choice_of("K", rel("R")))))
        ws = WorldSet.single(World.of(dict(db.items())))
        assert physical_answer(query, db) == answer(query, ws)


class TestEdges:
    def test_answer_requires_uniform_result(self, flights_db):
        with pytest.raises(TranslationError, match="varies"):
            physical_answer(choice_of("Dep", rel("Flights")), flights_db)

    def test_active_domain_rejected(self, flights_db):
        with pytest.raises(TranslationError):
            physical_answer(poss(active_domain(("X",))), flights_db)

    def test_world_guard_on_choice(self, flights_db):
        with pytest.raises(TranslationError, match="exceeded"):
            PhysicalEvaluator(flights_db, max_worlds=2).evaluate(
                choice_of("Dep", rel("Flights"))
            )

    def test_trip_query(self, flights_db, flights_ws):
        query = cert(project("Arr", choice_of("Dep", rel("Flights"))))
        assert physical_answer(query, flights_db) == answer(query, flights_ws)

    def test_grouping_physically(self, flights_db, flights_ws):
        query = poss(
            cert_group(("Dep",), ("Arr",), choice_of("Dep", rel("Flights")))
        )
        assert physical_answer(query, flights_db) == answer(query, flights_ws)

    def test_empty_worlds_preserved_in_grouping(self):
        db = Database({"R": Relation(("A", "B"), [(1, 2), (3, 4)])})
        query = cert(
            project(
                "B",
                select(eq("A", Const(1)), choice_of("A", rel("R"))),
            )
        )
        ws = WorldSet.single(World.of(dict(db.items())))
        # The A=3 world has an empty answer; cert must see it.
        assert physical_answer(query, db) == answer(query, ws)
        assert physical_answer(query, db).rows == set()
