"""General translation over representations with several id attributes.

The §7 pairing operation doubles the world-id attributes; translating
further queries over its output exercises Figure 6's handling of
multi-attribute V (choice-of then appends even more id attributes).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    cert,
    choice_of,
    evaluate,
    poss,
    poss_group,
    project,
    rel,
    select,
    union,
)
from repro.datagen import random_query
from repro.inline import InlinedRepresentation, apply_general, pair_on_inlined, subset_world_set
from repro.relational import Const, eq


@pytest.fixture
def paired_rep():
    """A representation with two id attributes and 16 worlds."""
    ws = subset_world_set([1, 2])
    rep = InlinedRepresentation.of_world_set(ws)
    return pair_on_inlined(rep, "R", "P")


class TestOnPairedRepresentation:
    @pytest.mark.parametrize(
        "query",
        [
            rel("R"),
            poss(rel("R")),
            cert(rel("R")),
            choice_of("A", rel("R")),
            poss_group(("A",), ("A",), rel("R")),
            union(rel("R"), select(eq("A", Const(1)), rel("R"))),
            cert(choice_of("A", rel("R"))),
            project(("P.A",), rel("P")),
        ],
        ids=lambda q: q.to_text(),
    )
    def test_translation_matches_semantics(self, paired_rep, query):
        direct = evaluate(query, paired_rep.rep(), name="Q")
        assert apply_general(query, paired_rep, name="Q").rep() == direct

    def test_two_id_attributes_present(self, paired_rep):
        assert len(paired_rep.id_attrs) == 2
        assert paired_rep.world_count() == 16


@given(st.integers(0, 3_000))
@settings(max_examples=40, deadline=None)
def test_random_queries_on_paired_representations(seed):
    ws = subset_world_set([1, 2])
    rep = pair_on_inlined(InlinedRepresentation.of_world_set(ws), "R", "P")
    query = random_query(
        seed, schemas={"R": ("A",), "P": ("P.A",)}, depth=2
    )
    direct = evaluate(query, rep.rep(), name="Q")
    assert apply_general(query, rep, name="Q").rep() == direct
