"""Figure 5 / Example 5.4: evaluating χ_A and pγ^{A,B}_B on inlined reps."""

from repro.core import choice_of, poss_group, rel
from repro.inline import InlinedRepresentation, apply_general, translate_general


def _strip_ids(relation, keep):
    """Project a translated table onto value attrs + normalized id column."""
    return {tuple(row) for row in relation.project(keep).rows}


class TestFigure5c:
    def test_choice_of_a_creates_ids_from_data(self, figure5_db):
        """Figure 5 (c): R1 gets id column with values 1, 2, 3 = A."""
        rep = InlinedRepresentation.of_database(figure5_db)
        out = apply_general(choice_of("A", rel("R")), rep, name="R1")
        table = out.tables["R1"]
        id_attr = out.id_attrs[0]
        assert _strip_ids(table, ("A", "B", id_attr)) == {
            (1, 2, 1),
            (2, 3, 2),
            (2, 4, 2),
            (3, 2, 3),
        }

    def test_world_table_holds_the_three_ids(self, figure5_db):
        rep = InlinedRepresentation.of_database(figure5_db)
        out = apply_general(choice_of("A", rel("R")), rep, name="R1")
        assert {row[0] for row in out.world_table.rows} == {1, 2, 3}

    def test_r_and_s_are_copied_into_each_world(self, figure5_db):
        rep = InlinedRepresentation.of_database(figure5_db)
        out = apply_general(choice_of("A", rel("R")), rep, name="R1")
        assert len(out.tables["R"]) == 4 * 3
        assert len(out.tables["S"]) == 2 * 3


class TestFigure5e:
    def test_grouping_on_b_produces_the_paper_table(self, figure5_db):
        """Figure 5 (e): R3 with group-ids replacing world-ids."""
        rep = InlinedRepresentation.of_database(figure5_db)
        query = poss_group(("B",), ("A", "B"), choice_of("A", rel("R")))
        out = apply_general(query, rep, name="R3")
        table = out.tables["R3"]
        id_attr = out.id_attrs[0]
        assert _strip_ids(table, ("A", "B", id_attr)) == {
            (1, 2, 1),
            (1, 2, 3),
            (2, 3, 2),
            (2, 4, 2),
            (3, 2, 1),
            (3, 2, 3),
        }

    def test_decoded_worlds_match_direct_semantics(self, figure5_db):
        from repro.core import evaluate
        from repro.worlds import World, WorldSet

        rep = InlinedRepresentation.of_database(figure5_db)
        query = poss_group(("B",), ("A", "B"), choice_of("A", rel("R")))
        out = apply_general(query, rep, name="R3")
        direct = evaluate(
            query,
            WorldSet.single(World.of(dict(figure5_db.items()))),
            name="R3",
        )
        assert out.rep() == direct


class TestTranslationObject:
    def test_answer_size_is_reported(self, figure5_db):
        rep = InlinedRepresentation.of_database(figure5_db)
        translation = translate_general(
            poss_group(("B",), ("A", "B"), choice_of("A", rel("R"))), rep
        )
        assert translation.answer_size() > 5

    def test_apply_uses_bound_source(self, figure5_db):
        rep = InlinedRepresentation.of_database(figure5_db)
        translation = translate_general(choice_of("A", rel("R")), rep)
        assert translation.apply(name="R1").tables["R1"]
