"""Example 5.6: the step-by-step general translation of the trip query."""

from repro.core import answer, cert, choice_of, project, rel
from repro.inline import (
    InlinedRepresentation,
    WORLD_TABLE,
    apply_general,
    conservative_ra_query,
    translate_general,
)
from repro.relational import Relation
from repro.worlds import World, WorldSet

QUERY = cert(project("Arr", choice_of("Dep", rel("HFlights"))))


class TestExample56:
    def test_step1_initial_representation(self, hflights_db):
        """Step 1: ⟨HFlights, W⟩ with W a nullary single-tuple table."""
        rep = InlinedRepresentation.of_database(hflights_db)
        assert rep.world_table == Relation.unit()

    def test_step3_choice_worlds(self, hflights_db):
        """Step 3: χ_Dep makes F's Dep values the world ids."""
        rep = InlinedRepresentation.of_database(hflights_db)
        out = apply_general(choice_of("Dep", rel("HFlights")), rep, name="F")
        assert {row[0] for row in out.world_table.rows} == {"FRA", "PAR", "PHL"}
        # HFlights is copied into all three worlds.
        assert len(out.tables["HFlights"]) == 15

    def test_steps_4_to_6_final_answer(self, hflights_db):
        """Steps 4–6: projection, division by W, id-drop → {ATL}."""
        rep = InlinedRepresentation.of_database(hflights_db)
        out = apply_general(QUERY, rep, name="F")
        decoded = {world["F"] for world in out.rep().worlds}
        assert decoded == {Relation(("Arr",), [("ATL",)])}

    def test_composed_ra_query(self, hflights_db):
        """Theorem 5.7 on this query: one RA query computes {ATL}."""
        ra_query = conservative_ra_query(QUERY, hflights_db.schemas())
        assert ra_query.evaluate(hflights_db).rows == {("ATL",)}
        ws = WorldSet.single(World.of(dict(hflights_db.items())))
        assert ra_query.evaluate(hflights_db) == answer(QUERY, ws)

    def test_translation_references_world_table_lazily(self, hflights_db):
        """The cert step divides by the world table expression."""
        rep = InlinedRepresentation.of_database(hflights_db)
        translation = translate_general(QUERY, rep)
        text = translation.answer.to_text()
        assert "÷" in text

    def test_world_table_name_reserved(self, hflights_db):
        rep = InlinedRepresentation.of_database(hflights_db)
        assert WORLD_TABLE == "#W"
        assert WORLD_TABLE in rep.as_database()
