"""The markdown documentation's links and anchors must resolve.

Runs the same checker the CI docs job uses (``tools/check_docs.py``)
inside tier-1, so a broken README/ARCHITECTURE/docs link fails locally
before it fails in CI — and verifies the documents ISSUE 4 promises
actually exist.
"""

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def _checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


def test_required_documents_exist():
    assert (ROOT / "README.md").is_file()
    assert (ROOT / "docs" / "isql-reference.md").is_file()
    assert (ROOT / "ARCHITECTURE.md").is_file()


def test_readme_links_the_language_reference():
    text = (ROOT / "README.md").read_text()
    assert "docs/isql-reference.md" in text
    assert "ARCHITECTURE.md" in text


def test_all_markdown_links_and_anchors_resolve():
    checker = _checker()
    problems = checker.check(ROOT)
    assert problems == []


def test_checker_flags_a_broken_link(tmp_path):
    (tmp_path / "a.md").write_text("see [missing](nope.md) and [ok](b.md#title)")
    (tmp_path / "b.md").write_text("# Title\nbody")
    checker = _checker()
    problems = checker.check(tmp_path)
    assert len(problems) == 1 and "nope.md" in problems[0]
