"""Figure 7: every equivalence validated against the Figure 3 semantics.

Each equation is checked on randomized world-sets: the left- and
right-hand sides are built from random subqueries and must produce
identical world-sets. Eq. (20)/(21) are additionally pinned with the
counterexample found during development (see DESIGN.md): as printed
they fail when the χ-operand's answer varies across worlds, so the
shipped rules carry a typing guard.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    cert,
    cert_group,
    choice_of,
    difference,
    evaluate,
    intersect,
    poss,
    poss_group,
    product,
    project,
    rel,
    rename,
    select,
    union,
)
from repro.datagen import random_world_set
from repro.relational import Const, eq

seeds = st.integers(0, 30_000)
SCHEMAS = {"R": ("A", "B"), "S": ("C", "D")}


def equal_semantics(lhs, rhs, world_set):
    return evaluate(lhs, world_set, name="Q") == evaluate(rhs, world_set, name="Q")


def subquery(seed):
    """A random subquery with output attributes (A, B)."""
    import random

    rng = random.Random(seed)
    q = rel("R")
    for _ in range(rng.randrange(3)):
        roll = rng.random()
        if roll < 0.4:
            q = select(eq("A", Const(rng.randrange(4))), q)
        elif roll < 0.7:
            q = choice_of(rng.choice(("A", "B", ("A", "B"))), q)
        else:
            q = poss(q) if rng.random() < 0.5 else cert(q)
    return q


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq1_poss_commutes_with_selection(seed):
    ws = random_world_set(seed)
    q = subquery(seed + 1)
    phi = eq("A", Const(1))
    assert equal_semantics(poss(select(phi, q)), select(phi, poss(q)), ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq2_poss_commutes_with_projection(seed):
    ws = random_world_set(seed)
    q = subquery(seed + 2)
    assert equal_semantics(poss(project("A", q)), project("A", poss(q)), ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq3_poss_distributes_over_union(seed):
    ws = random_world_set(seed)
    q1, q2 = subquery(seed + 3), subquery(seed + 4)
    assert equal_semantics(poss(union(q1, q2)), union(poss(q1), poss(q2)), ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq4_cert_commutes_with_selection(seed):
    ws = random_world_set(seed)
    q = subquery(seed + 5)
    phi = eq("B", Const(2))
    assert equal_semantics(cert(select(phi, q)), select(phi, cert(q)), ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq5_cert_distributes_over_intersection(seed):
    ws = random_world_set(seed)
    q1, q2 = subquery(seed + 6), subquery(seed + 7)
    assert equal_semantics(
        cert(intersect(q1, q2)), intersect(cert(q1), cert(q2)), ws
    )


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq6_cert_distributes_over_product(seed):
    ws = random_world_set(seed)
    q1 = subquery(seed + 8)
    q2 = rename({"A": "A2", "B": "B2"}, subquery(seed + 9))
    assert equal_semantics(cert(product(q1, q2)), product(cert(q1), cert(q2)), ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq7_projection_commutes_with_choice(seed):
    ws = random_world_set(seed)
    q = subquery(seed + 10)
    lhs = project(("A", "B"), choice_of("A", q))
    rhs = choice_of("A", project(("A", "B"), q))
    assert equal_semantics(lhs, rhs, ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq8_choice_commutes_with_product(seed):
    ws = random_world_set(seed)
    q1 = subquery(seed + 11)
    q2 = rename({"C": "C2", "D": "D2"}, rel("S"))
    lhs = product(choice_of("A", q1), q2)
    rhs = choice_of("A", product(q1, q2))
    assert equal_semantics(lhs, rhs, ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq9_10_selection_commutes_with_grouping(seed):
    ws = random_world_set(seed)
    q = subquery(seed + 12)
    phi = eq("A", Const(2))  # Attrs(φ) ⊆ X ∩ Y with X = Y = {A, B}
    for constructor in (poss_group, cert_group):
        lhs = select(phi, constructor(("A", "B"), ("A", "B"), q))
        rhs = constructor(("A", "B"), ("A", "B"), select(phi, q))
        assert equal_semantics(lhs, rhs, ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq11_poss_absorbs_choice(seed):
    ws = random_world_set(seed)
    q = subquery(seed + 13)
    assert equal_semantics(poss(choice_of("A", q)), poss(q), ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq12_grouping_with_covered_projection_is_projection(seed):
    ws = random_world_set(seed)
    q = subquery(seed + 14)
    for constructor in (poss_group, cert_group):
        lhs = constructor(("A", "B"), ("A",), q)
        assert equal_semantics(lhs, project("A", q), ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq13_projection_cancels_poss_grouping(seed):
    """Eq. (13) is stated for pγ — π distributes over the group unions."""
    ws = random_world_set(seed)
    q = subquery(seed + 15)
    lhs = project("A", poss_group(("A",), ("A", "B"), q))
    assert equal_semantics(lhs, project("A", q), ws)


def test_eq13_does_not_extend_to_cert_grouping():
    """π_Z(cγ…) ≠ π_Z(q): intersections can lose all Z-witnesses."""
    from repro.relational import Relation
    from repro.worlds import World, WorldSet

    ws = WorldSet(
        [
            World.of({"R": Relation(("A", "B"), [(0, 1)])}),
            World.of({"R": Relation(("A", "B"), [(0, 2)])}),
        ]
    )
    lhs = project("A", cert_group(("A",), ("A", "B"), rel("R")))
    assert not equal_semantics(lhs, project("A", rel("R")), ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq14_projection_merges_into_poss_group(seed):
    ws = random_world_set(seed)
    q = subquery(seed + 16)
    lhs = project("B", poss_group(("A",), ("A", "B"), q))
    rhs = poss_group(("A",), ("B",), q)
    assert equal_semantics(lhs, rhs, ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq15_poss_absorbs_poss_group(seed):
    ws = random_world_set(seed)
    q = subquery(seed + 17)
    lhs = poss(poss_group(("A",), ("B",), q))
    rhs = poss(project("B", q))
    assert equal_semantics(lhs, rhs, ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq16_cert_absorbs_cert_group(seed):
    ws = random_world_set(seed)
    q = subquery(seed + 18)
    lhs = cert(cert_group(("A",), ("B",), q))
    rhs = cert(project("B", q))
    assert equal_semantics(lhs, rhs, ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq17_nested_choices_merge(seed):
    ws = random_world_set(seed)
    q = subquery(seed + 19)
    assert equal_semantics(
        choice_of("A", choice_of("B", q)), choice_of(("A", "B"), q), ws
    )
    assert equal_semantics(
        choice_of("A", choice_of("B", q)), choice_of("B", choice_of("A", q)), ws
    )


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_eq18_nested_groupings_merge_sound_instance(seed):
    """Eq. (18) with equal grouping attributes: γ^Y_X(pγ^{X∪Z}_X(q)) =
    pγ^Y_X(q), for both outer kinds — the instance the rewriter applies."""
    ws = random_world_set(seed)
    q = subquery(seed + 20)
    inner = poss_group(("A",), ("A", "B"), q)
    for outer_ctor in (poss_group, cert_group):
        lhs = outer_ctor(("A",), ("A",), inner)
        rhs = poss_group(("A",), ("A",), q)
        assert equal_semantics(lhs, rhs, ws)


def test_eq19_as_printed_counterexample():
    """Eq. (19) over an inner cγ fails: π_Y does not distribute over the
    per-group intersections (DESIGN.md faithfulness note)."""
    from repro.relational import Relation
    from repro.worlds import World, WorldSet

    ws = WorldSet(
        [
            World.of({"R": Relation(("A", "B"), [(0, 1)])}),
            World.of({"R": Relation(("A", "B"), [(0, 2)])}),
        ]
    )
    inner = cert_group(("A",), ("A", "B"), rel("R"))  # X={A}, V=∅, Z={B}
    lhs = poss_group(("A",), ("A",), inner)
    rhs = cert_group(("A",), ("A",), rel("R"))
    assert not equal_semantics(lhs, rhs, ws)


def test_eq18_extra_inner_grouping_attributes_counterexample():
    """Eq. (18) with V ≠ ∅ fails: the coarser outer grouping merges
    inner groups whose per-group unions differ (X=∅, V={A}, Z={B})."""
    from repro.relational import Relation
    from repro.worlds import World, WorldSet

    ws = WorldSet(
        [
            World.of({"R": Relation(("A", "B"), [(0, 1)])}),
            World.of({"R": Relation(("A", "B"), [(2, 3)])}),
        ]
    )
    inner = poss_group(("A",), ("B",), rel("R"))  # pγ^{X∪Z}_{X∪V}
    lhs = poss_group((), ("B",), inner)  # outer pγ^Y_X with X=∅
    rhs = poss_group(("A",), ("B",), rel("R"))  # claimed pγ^Y_{X∪V}
    assert not equal_semantics(lhs, rhs, ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq20_poss_group_over_choice_single_world(seed):
    """Eq. (20) in the paper's setting: evaluation from one world."""
    ws = random_world_set(seed, max_worlds=1)
    lhs = poss_group(("A",), ("A", "B"), choice_of(("A", "B"), rel("R")))
    rhs = project(("A", "B"), choice_of("A", rel("R")))
    assert equal_semantics(lhs, rhs, ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq21_cert_group_over_choice_sound_instance(seed):
    """Eq. (21) with Y ⊆ X (single-world input): the shipped rule."""
    ws = random_world_set(seed, max_worlds=1)
    chi = choice_of(("A", "B"), rel("R"))
    lhs = cert_group(("A",), ("A",), chi)
    rhs = project(("A",), chi)
    assert equal_semantics(lhs, rhs, ws)


def test_eq21_as_printed_counterexample():
    """Eq. (21) with Y ⊈ X fails even from a complete database: two
    χ-worlds sharing the X-choice but differing on Y intersect to ∅."""
    from repro.relational import Relation
    from repro.worlds import World, WorldSet

    ws = WorldSet.single(
        World.of({"R": Relation(("A", "B"), [("a", "b1"), ("a", "b2")])})
    )
    chi = choice_of(("A", "B"), rel("R"))
    lhs = cert_group(("A",), ("B",), chi)
    rhs = project(("B",), chi)
    assert not equal_semantics(lhs, rhs, ws)


def test_eq20_unguarded_counterexample():
    """The regression pin: Eq. (20) fails on multi-world inputs when the
    χ-operand's answer varies across worlds (DESIGN.md faithfulness note)."""
    from repro.relational import Relation
    from repro.worlds import World, WorldSet

    ws = WorldSet(
        [
            World.of({"R": Relation(("A", "B"), [(1, 10)])}),
            World.of({"R": Relation(("A", "B"), [(1, 20)])}),
        ]
    )
    lhs = poss_group(("A",), ("A", "B"), choice_of(("A", "B"), rel("R")))
    rhs = project(("A", "B"), choice_of("A", rel("R")))
    assert not equal_semantics(lhs, rhs, ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq22_23_closing_compositions(seed):
    ws = random_world_set(seed)
    q = subquery(seed + 21)
    assert equal_semantics(poss(cert(q)), cert(q), ws)
    assert equal_semantics(cert(cert(q)), cert(q), ws)
    assert equal_semantics(poss(poss(q)), poss(q), ws)
    assert equal_semantics(cert(poss(q)), poss(q), ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_eq24_cert_over_difference(seed):
    ws = random_world_set(seed)
    q1, q2 = subquery(seed + 22), subquery(seed + 23)
    lhs = cert(difference(q1, q2))
    rhs = cert(difference(cert(q1), q2))
    assert equal_semantics(lhs, rhs, ws)


# -- Union reductions (ISSUE 4: the union-of-semijoins form of OR) ----------


def split_free_subquery(seed):
    """A random subquery without choice-of/repair (merge-safe)."""
    import random

    rng = random.Random(seed)
    q = rel("R")
    for _ in range(rng.randrange(3)):
        roll = rng.random()
        if roll < 0.5:
            q = select(eq("A", Const(rng.randrange(4))), q)
        else:
            q = poss(q) if rng.random() < 0.5 else cert(q)
    return q


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_union_select_merge_on_split_free_child(seed):
    """σ_φ(q) ∪ σ_ψ(q) = σ_{φ∨ψ}(q) when q mints no world ids."""
    ws = random_world_set(seed)
    q = split_free_subquery(seed + 31)
    phi = eq("A", Const(seed % 3))
    psi = eq("B", Const(seed % 4))
    lhs = union(select(phi, q), select(psi, q))
    rhs = select(phi | psi, q)
    assert equal_semantics(lhs, rhs, ws)


@given(seeds)
@settings(max_examples=50, deadline=None)
def test_union_idempotent_on_split_free_child(seed):
    """q ∪ q = q when q mints no world ids."""
    ws = random_world_set(seed)
    q = split_free_subquery(seed + 37)
    assert equal_semantics(union(q, q), q, ws)


def test_union_merge_guard_splitting_counterexample():
    """With a splitting child the merge is UNSOUND: two references pair
    independent choices (off-diagonal worlds), one reference does not —
    which is exactly why the shipped rules carry the split-free guard."""
    from repro.core import evaluate
    from repro.datagen import paper_flights
    from repro.worlds import World, WorldSet

    ws = WorldSet.single(World.of({"R": paper_flights().rename(
        {"Dep": "A", "Arr": "B"})}))
    q = choice_of("A", rel("R"))
    phi = eq("B", Const("BCN"))
    psi = eq("B", Const("ATL"))
    lhs = union(select(phi, q), select(psi, q))
    rhs = select(phi | psi, q)
    assert evaluate(lhs, ws, name="Q") != evaluate(rhs, ws, name="Q")


def test_union_rules_fire_in_rewriter():
    from repro.optimizer import optimize

    phi = eq("A", Const(1))
    psi = eq("A", Const(2))
    merged, trace = optimize(
        union(select(phi, rel("R")), select(psi, rel("R"))), SCHEMAS
    )
    assert any("union" in step.rule.equation for step in trace)
    idem, trace = optimize(
        union(select(phi, rel("R")), select(phi, rel("R"))), SCHEMAS
    )
    assert idem == select(phi, rel("R"))

    # Guard: a splitting child must NOT merge.
    splitting = union(
        select(phi, choice_of("A", rel("R"))),
        select(psi, choice_of("A", rel("R"))),
    )
    kept, _ = optimize(splitting, SCHEMAS)
    from repro.core.ast import Union as UnionNode

    assert any(isinstance(node, UnionNode) for node in kept.walk())
