"""Rewrite traces: every intermediate step is itself an equivalence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import evaluate
from repro.datagen import random_query, random_world_set
from repro.optimizer import Rewriter

SCHEMAS = {"R": ("A", "B"), "S": ("C", "D")}


@given(st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_steps_chain(seed):
    """step[i].after == step[i+1].before, start and end match."""
    query = random_query(seed * 11 + 3, depth=4)
    optimized, trace = Rewriter().optimize(query, SCHEMAS)
    if not trace:
        assert optimized == query
        return
    assert trace[0].before == query
    assert trace[-1].after == optimized
    for earlier, later in zip(trace, trace[1:]):
        assert earlier.after == later.before


@given(st.integers(0, 5_000))
@settings(max_examples=30, deadline=None)
def test_every_intermediate_step_preserves_semantics(seed):
    """Not just the endpoints: each single rewrite step is sound."""
    ws = random_world_set(seed + 100, max_worlds=1)
    query = random_query(seed * 7 + 1, depth=3)
    _, trace = Rewriter().optimize(query, SCHEMAS)
    for step in trace:
        assert evaluate(step.before, ws, name="Q") == evaluate(
            step.after, ws, name="Q"
        ), repr(step)


def test_trace_repr_names_the_equation():
    from repro.core import choice_of, poss, rel

    _, trace = Rewriter().optimize(poss(choice_of("A", rel("R"))), SCHEMAS)
    assert any("Eq. (11)" in repr(step) for step in trace)
