"""Proposition 6.3: poss and cert are inter-expressible (Eq. 25/26).

Each property draws one seed and derives the world-set and subquery
from it with composed strategies, so a single ``@given`` covers both —
importing the ``subquery`` helper at module scope keeps hypothesis's
``nested_given`` health check quiet (applying ``@given`` while another
``@given`` test is running is what it flags).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.optimizer.test_equivalences import subquery

from repro.core import cert, evaluate, poss
from repro.datagen import random_world_set
from repro.optimizer import cert_via_domain, cert_via_poss, poss_via_cert
from repro.relational import Schema

seeds = st.integers(0, 20_000)
ENV = {"R": Schema(("A", "B")), "S": Schema(("C", "D"))}

#: (world-set, subquery) pairs for the full-domain equations.
cases = st.builds(
    lambda seed: (random_world_set(seed), subquery(seed + 1)), seeds
)

#: Pairs over the small bounded domain used by the D^arity equations.
bounded_cases = st.builds(
    lambda seed: (
        random_world_set(seed, max_worlds=3, max_rows=4, domain=(0, 1, 2)),
        subquery(seed + 2),
    ),
    seeds,
)


@given(cases)
@settings(max_examples=60, deadline=None)
def test_eq25_cert_via_poss(case):
    """cert(Q) = Q − poss(poss(Q) − Q)."""
    ws, q = case
    direct = evaluate(cert(q), ws, name="Q")
    encoded = evaluate(cert_via_poss(q, ENV), ws, name="Q")
    assert direct == encoded


@given(bounded_cases)
@settings(max_examples=40, deadline=None)
def test_eq25_cert_via_domain(case):
    """cert(Q) = Q − poss(D^arity(Q) − Q)."""
    ws, q = case
    direct = evaluate(cert(q), ws, name="Q")
    encoded = evaluate(cert_via_domain(q, ENV), ws, name="Q")
    assert direct == encoded


@given(bounded_cases)
@settings(max_examples=40, deadline=None)
def test_eq26_poss_via_cert(case):
    """poss(Q) = D^arity(Q) − cert(D^arity(Q) − Q)."""
    ws, q = case
    direct = evaluate(poss(q), ws, name="Q")
    encoded = evaluate(poss_via_cert(q, ENV), ws, name="Q")
    assert direct == encoded
