"""Proposition 6.3: poss and cert are inter-expressible (Eq. 25/26)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cert, evaluate, poss
from repro.datagen import random_world_set
from repro.optimizer import cert_via_domain, cert_via_poss, poss_via_cert
from repro.relational import Schema

seeds = st.integers(0, 20_000)
ENV = {"R": Schema(("A", "B")), "S": Schema(("C", "D"))}


def inner(seed):
    from tests.optimizer.test_equivalences import subquery

    return subquery(seed)


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_eq25_cert_via_poss(seed):
    """cert(Q) = Q − poss(poss(Q) − Q)."""
    ws = random_world_set(seed)
    q = inner(seed + 1)
    direct = evaluate(cert(q), ws, name="Q")
    encoded = evaluate(cert_via_poss(q, ENV), ws, name="Q")
    assert direct == encoded


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_eq25_cert_via_domain(seed):
    """cert(Q) = Q − poss(D^arity(Q) − Q)."""
    ws = random_world_set(seed, max_worlds=3, max_rows=4, domain=(0, 1, 2))
    q = inner(seed + 2)
    direct = evaluate(cert(q), ws, name="Q")
    encoded = evaluate(cert_via_domain(q, ENV), ws, name="Q")
    assert direct == encoded


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_eq26_poss_via_cert(seed):
    """poss(Q) = D^arity(Q) − cert(D^arity(Q) − Q)."""
    ws = random_world_set(seed, max_worlds=3, max_rows=4, domain=(0, 1, 2))
    q = inner(seed + 3)
    direct = evaluate(poss(q), ws, name="Q")
    encoded = evaluate(poss_via_cert(q, ENV), ws, name="Q")
    assert direct == encoded
