"""Examples 6.1 and 6.2 with Figures 8 and 9: the paper's derivations."""

import pytest

from repro.core import (
    answer,
    cert,
    choice_of,
    poss,
    poss_group,
    product,
    project,
    rel,
    select,
)
from repro.optimizer import compare, optimize
from repro.relational import Relation, eq
from repro.render import render_plan
from repro.worlds import World, WorldSet

HF_ATTRS = ("Dep", "Arr")
HOTEL_ATTRS = ("Name", "City", "Price")
ALL_ATTRS = HF_ATTRS + HOTEL_ATTRS
SCHEMAS = {"HFlights": HF_ATTRS, "Hotels": HOTEL_ATTRS}


def q1():
    """q1 = cert(π_City(σ_{Arr=City}(pγ^*_Dep(χ_{Dep,City}(HFlights × Hotels)))))."""
    return cert(
        project(
            "City",
            select(
                eq("Arr", "City"),
                poss_group(
                    ("Dep",),
                    ALL_ATTRS,
                    choice_of(("Dep", "City"), product(rel("HFlights"), rel("Hotels"))),
                ),
            ),
        )
    )


def q2():
    return poss(
        project(
            "City",
            select(
                eq("Arr", "City"),
                poss_group(
                    ("Dep",),
                    ALL_ATTRS,
                    choice_of(("Dep", "City"), product(rel("HFlights"), rel("Hotels"))),
                ),
            ),
        )
    )


@pytest.fixture
def travel_ws(flights):
    hotels = Relation(
        HOTEL_ATTRS,
        [("Hilton", "BCN", 200), ("Ritz", "ATL", 300), ("Ibis", "ATL", 100)],
    )
    return WorldSet.single(World.of({"HFlights": flights, "Hotels": hotels}))


class TestExample61:
    def test_rewritten_form_matches_figure_8b(self):
        optimized, trace = optimize(q1(), SCHEMAS)
        assert optimized.to_text() == (
            "cert(π[City]((χ[Dep](HFlights) ⋈[Arr=City] Hotels)))"
        )
        equations = [step.rule.equation for step in trace]
        assert "Eq. (20)" in equations and "Eq. (8)" in equations

    def test_equivalence_on_data(self, travel_ws):
        optimized, _ = optimize(q1(), SCHEMAS)
        assert answer(q1(), travel_ws) == answer(optimized, travel_ws)
        assert answer(q1(), travel_ws).rows == {("ATL",)}

    def test_figure_8_plans_render(self):
        optimized, _ = optimize(q1(), SCHEMAS)
        original_plan = render_plan(q1(), title="(a) Query q1")
        rewritten_plan = render_plan(optimized, title="(b) Query q1'")
        assert "pγ" in original_plan and "χ[Dep,City]" in original_plan
        assert "χ[Dep]" in rewritten_plan and "pγ" not in rewritten_plan

    def test_cost_model_prefers_the_rewrite(self):
        optimized, _ = optimize(q1(), SCHEMAS)
        sizes = {"HFlights": 100, "Hotels": 50}
        assert compare(q1(), optimized, sizes) > 10


class TestExample62:
    def test_rewritten_form_matches_figure_9b(self):
        optimized, trace = optimize(q2(), SCHEMAS)
        assert optimized.to_text() == (
            "π[City](poss((HFlights ⋈[Arr=City] Hotels)))"
        )
        equations = [step.rule.equation for step in trace]
        assert "Eq. (11)" in equations  # poss absorbed the choice-of

    def test_no_world_operators_besides_poss_remain(self):
        from repro.core.ast import Cert, ChoiceOf, PossGroup

        optimized, _ = optimize(q2(), SCHEMAS)
        assert not any(
            isinstance(node, (ChoiceOf, PossGroup, Cert))
            for node in optimized.walk()
        )

    def test_equivalence_on_data(self, travel_ws):
        optimized, _ = optimize(q2(), SCHEMAS)
        assert answer(q2(), travel_ws) == answer(optimized, travel_ws)
        assert answer(q2(), travel_ws).rows == {("ATL",), ("BCN",)}

    def test_on_complete_data_poss_can_drop_via_translation(self, travel_ws):
        """'In case the input data is complete, the operator poss can be
        dropped and q2' becomes a relational algebra query.'"""
        from repro.inline import optimized_ra_query

        optimized, _ = optimize(q2(), SCHEMAS)
        ra = optimized_ra_query(optimized, SCHEMAS)
        assert "poss" not in ra.to_text()
        world = travel_ws.the_world()
        from repro.relational import Database

        db = Database(dict(world.items()))
        assert ra.evaluate(db) == answer(q2(), travel_ws)

    def test_cost_model_prefers_the_rewrite(self):
        optimized, _ = optimize(q2(), SCHEMAS)
        assert compare(q2(), optimized, {"HFlights": 100, "Hotels": 50}) > 10
