"""The heuristic cost model: sanity and monotonicity checks."""

from repro.core import (
    cert,
    choice_of,
    poss,
    poss_group,
    product,
    project,
    rel,
    rename,
    select,
    union,
)
from repro.core.ast import active_domain, repair_by_key
from repro.optimizer import compare, estimate
from repro.relational import Const, eq


class TestEstimates:
    def test_base_relation_uses_given_size(self):
        est = estimate(rel("R"), {"R": 500})
        assert est.rows == 500 and est.worlds == 1

    def test_default_size_applies(self):
        assert estimate(rel("Z")).rows == 100

    def test_selection_halves_rows(self):
        est = estimate(select(eq("A", Const(1)), rel("R")), {"R": 100})
        assert est.rows == 50

    def test_choice_multiplies_worlds(self):
        est = estimate(choice_of("A", rel("R")), {"R": 100})
        assert est.worlds == 100

    def test_product_multiplies_rows(self):
        q = product(rel("R"), rename({"A": "X", "B": "Y"}, rel("S")))
        est = estimate(q, {"R": 10, "S": 20})
        assert est.rows == 200

    def test_union_adds_rows(self):
        est = estimate(union(rel("R"), rel("R")), {"R": 10})
        assert est.rows == 20

    def test_grouping_charges_pairwise_world_work(self):
        cheap = estimate(project("A", choice_of("A", rel("R"))), {"R": 50})
        grouped = estimate(
            poss_group(("A",), ("A",), choice_of("A", rel("R"))), {"R": 50}
        )
        assert grouped.work > cheap.work

    def test_closing_keeps_worlds_metric(self):
        est = estimate(poss(choice_of("A", rel("R"))), {"R": 10})
        assert est.rows == 1.0 or est.rows >= 0

    def test_repair_and_domain_have_costs(self):
        assert estimate(repair_by_key("A", rel("R")), {"R": 8}).worlds > 1
        assert estimate(active_domain(("X", "Y"))).rows == 100**2


class TestCompare:
    def test_identity_ratio_is_one(self):
        q = select(eq("A", Const(1)), rel("R"))
        assert abs(compare(q, q) - 1.0) < 1e-9

    def test_removing_a_choice_wins(self):
        before = poss(choice_of("A", rel("R")))
        after = poss(rel("R"))
        assert compare(before, after, {"R": 200}) > 1


class TestDisjunctiveSelectivity:
    """ISSUE 4: the model prices OR/AND/NOT predicate shapes apart."""

    def test_or_keeps_more_rows_than_and(self):
        phi = eq("A", Const(1))
        psi = eq("B", Const(2))
        disjunctive = estimate(select(phi | psi, rel("R")), {"R": 100})
        conjunctive = estimate(select(phi & psi, rel("R")), {"R": 100})
        assert disjunctive.rows == 100  # 0.5 + 0.5, capped at 1.0
        assert conjunctive.rows == 25

    def test_negation_complements(self):
        from repro.relational.predicates import Not

        phi = eq("A", Const(1))
        psi = eq("B", Const(2))
        est = estimate(select(Not(phi & psi), rel("R")), {"R": 100})
        assert est.rows == 75

    def test_union_of_chains_costs_both_child_evaluations(self):
        """The union-of-semijoins OR shape pays the child twice — which
        is what makes the σ∪σ merge rule a win when it applies."""
        phi = eq("A", Const(1))
        psi = eq("B", Const(2))
        chains = union(select(phi, rel("R")), select(psi, rel("R")))
        merged = select(phi | psi, rel("R"))
        assert estimate(chains, {"R": 100}).work > estimate(merged, {"R": 100}).work
