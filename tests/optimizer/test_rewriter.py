"""The rewrite engine: fixpoints, traces, soundness on random queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RewriteError
from repro.core import cert, choice_of, evaluate, poss, project, rel, select
from repro.datagen import random_query, random_world_set
from repro.optimizer import Rewriter, optimize
from repro.relational import Const, eq

SCHEMAS = {"R": ("A", "B"), "S": ("C", "D")}


class TestMechanics:
    def test_trace_records_each_step(self):
        query = poss(choice_of("A", rel("R")))
        optimized, trace = optimize(query, SCHEMAS)
        assert optimized == poss(rel("R"))
        assert any(step.rule.equation == "Eq. (11)" for step in trace)
        assert trace[0].before == query
        assert trace[-1].after == optimized

    def test_fixpoint_reaches_no_more_matches(self):
        query = poss(poss(poss(rel("R"))))
        optimized, _ = optimize(query, SCHEMAS)
        assert optimized == poss(rel("R"))

    def test_non_matching_query_is_unchanged(self):
        query = select(eq("A", Const(1)), rel("R"))
        optimized, trace = optimize(query, SCHEMAS)
        assert optimized == query and trace == []

    def test_max_steps_guard(self):
        from repro.optimizer.equivalences import RewriteRule
        from repro.core.ast import Poss

        flip = RewriteRule(
            "loop", "test", lambda q, env: Poss(q) if not isinstance(q, Poss) else None
        )
        with pytest.raises(RewriteError, match="converge"):
            Rewriter([flip], max_steps=5).optimize(rel("R"), SCHEMAS)

    def test_finalize_can_be_disabled(self):
        query = select(eq("A", Const(1)), poss(rel("R")))
        kept, _ = optimize(query, SCHEMAS)
        assert kept == poss(select(eq("A", Const(1)), rel("R")))
        raw, _ = Rewriter().optimize(query, SCHEMAS, finalize=False)
        assert raw == query

    def test_invalid_query_rejected_before_rewriting(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            optimize(project("Z", rel("R")), SCHEMAS)


class TestSoundness:
    @given(st.integers(0, 30_000))
    @settings(max_examples=100, deadline=None)
    def test_single_world_inputs_default_rules(self, seed):
        ws = random_world_set(seed, max_worlds=1)
        query = random_query(seed * 19 + 11, depth=4)
        optimized, _ = optimize(query, SCHEMAS)
        assert evaluate(query, ws, name="Q") == evaluate(optimized, ws, name="Q")

    @given(st.integers(0, 30_000))
    @settings(max_examples=100, deadline=None)
    def test_world_set_inputs_strict_rules(self, seed):
        ws = random_world_set(seed)
        query = random_query(seed * 13 + 5, depth=4)
        optimized, _ = optimize(query, SCHEMAS, input_kind="m")
        assert evaluate(query, ws, name="Q") == evaluate(optimized, ws, name="Q")

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_rewriting_never_grows_splitting_operators(self, seed):
        """poss/cert may duplicate under the distribution rules (3)/(5)/(6),
        but the world-splitting operators (χ, γ) only move or vanish."""
        from repro.core.ast import CertGroup, ChoiceOf, PossGroup

        def splitting_ops(q):
            return sum(
                isinstance(n, (ChoiceOf, PossGroup, CertGroup)) for n in q.walk()
            )

        query = random_query(seed * 23 + 7, depth=4)
        optimized, _ = optimize(query, SCHEMAS)
        assert splitting_ops(optimized) <= splitting_ops(query)


class TestReductionPower:
    def test_poss_of_choice_collapses_to_relational(self):
        """Example 6.2's punchline: poss-closed choice queries lose all
        world operators and become (almost) relational algebra."""
        query = poss(project("A", choice_of(("A", "B"), rel("R"))))
        optimized, _ = optimize(query, SCHEMAS)
        assert optimized == project("A", poss(rel("R")))

    def test_certain_trip_query_reduces(self):
        query = cert(project("Arr", choice_of("Dep", rel("HFlights"))))
        optimized, _ = optimize(query, {"HFlights": ("Dep", "Arr")})
        # cert does not absorb χ (unlike poss): the χ must survive.
        from repro.core.ast import ChoiceOf

        assert any(isinstance(n, ChoiceOf) for n in optimized.walk())
