"""Error ergonomics: positions with context, statement spans, hygiene.

Three user-facing guarantees:

* :class:`~repro.errors.ParseError` turns a character offset into a
  line/column plus a caret-annotated source snippet whenever the parser
  knows the source text;
* schema/evaluation errors raised while applying DML inside a script
  carry a ``while executing: <statement text>`` note naming the
  culprit statement (or the whole coalesced batch);
* only :class:`~repro.errors.ReproError` subclasses ever escape the
  public session API — pinned here by a deterministic mutation fuzz
  over scripts plus an injected-fault probe.
"""

import random

import pytest

from repro.errors import ParseError, ReproError
from repro.isql.parser import parse_script, parse_statement
from repro.isql.session import ISQLSession
from repro.relational import Relation
from repro.testing import InjectedFault, inject_fault


@pytest.fixture
def session():
    s = ISQLSession(backend="inline")
    s.register(
        "Flights",
        Relation(("Dep", "Arr"), [("FRA", "BCN"), ("FRA", "ATL"), ("PAR", "ATL")]),
    )
    return s


class TestParseErrorPositions:
    def test_single_line_reports_line_and_column(self):
        with pytest.raises(ParseError) as info:
            parse_statement("select Dep frum Flights;")
        message = str(info.value)
        assert "line 1" in message
        assert "^" in message  # caret-annotated snippet

    def test_multiline_script_points_at_the_right_line(self):
        script = (
            "insert into Flights values ('LIS', 'FRA');\n"
            "select Dep\n"
            "frum Flights;\n"
        )
        with pytest.raises(ParseError) as info:
            parse_script(script)
        error = info.value
        assert error.line == 3
        assert error.column is not None
        message = str(error)
        assert "line 3" in message
        assert "frum Flights;" in message  # the offending source line
        caret_line = message.splitlines()[-1]
        assert caret_line.strip() == "^"

    def test_caret_sits_under_the_offending_column(self):
        with pytest.raises(ParseError) as info:
            parse_statement("select ~ from Flights;")
        snippet, caret = str(info.value).splitlines()[-2:]
        offset = caret.index("^") - (len(caret) - len(caret.lstrip()))
        prefix = len(snippet) - len(snippet.lstrip())
        assert snippet.lstrip()[caret.index("^") - prefix] == "~"

    def test_offset_only_error_keeps_offset_text(self):
        error = ParseError("bad token", position=17)
        assert "offset 17" in str(error)
        assert error.line is None and error.column is None

    def test_positionless_error_is_just_the_message(self):
        error = ParseError("bad token")
        assert str(error) == "bad token"
        assert error.with_source("whatever") is error


class TestStatementSpans:
    def test_failing_dml_in_script_names_the_statement(self, session):
        script = (
            "insert into Flights values ('LIS', 'FRA');\n"
            "delete from Flights where Nope = 1;\n"
        )
        with pytest.raises(ReproError) as info:
            session.run_script(script)
        notes = getattr(info.value, "__notes__", [])
        assert any(
            note.startswith("while executing: ")
            and "delete from Flights where Nope = 1" in note
            for note in notes
        )

    def test_failing_batch_note_spans_the_whole_batch(self, session):
        # Two batchable deletes against one relation coalesce; the
        # error note quotes the whole batch, first through last.
        script = (
            "delete from Flights where Nope = 1;\n"
            "delete from Flights where Nope = 2;\n"
        )
        with pytest.raises(ReproError) as info:
            session.run_script(script)
        notes = getattr(info.value, "__notes__", [])
        assert any("Nope = 1" in note and "Nope = 2" in note for note in notes)

    def test_note_is_attached_once_not_per_frame(self, session):
        with pytest.raises(ReproError) as info:
            session.run_script("delete from Flights where Nope = 1;")
        notes = [
            note
            for note in getattr(info.value, "__notes__", [])
            if note.startswith("while executing: ")
        ]
        assert len(notes) == 1

    def test_programmatic_statements_have_no_span_and_no_note(self, session):
        from repro.isql import ast

        statement = ast.Delete("Flights", None)
        assert statement.span is None
        # Spanless nodes execute fine and errors pass through unannotated.
        session.execute_statement(statement)


VALID_SCRIPTS = [
    "select possible Dep from Flights choice of Dep;",
    "insert into Flights values ('LIS', 'FRA');",
    "update Flights set Arr = 'MAD' where Dep = 'FRA';",
    "delete from Flights where Arr = 'ATL';",
    "create view V as select Dep from Flights;",
    "H <- select * from Flights choice of Dep;"
    "select certain Arr from H where Dep = 'FRA';",
]

MUTATIONS = "();'<-=,*~%$\x00é"


def _mutate(script: str, rng: random.Random) -> str:
    choice = rng.randrange(4)
    position = rng.randrange(len(script))
    if choice == 0:  # delete a character
        return script[:position] + script[position + 1 :]
    if choice == 1:  # insert a hostile character
        return script[:position] + rng.choice(MUTATIONS) + script[position:]
    if choice == 2:  # truncate mid-statement
        return script[:position]
    return script[:position] + rng.choice(MUTATIONS) + script[position + 1 :]


class TestExceptionHygiene:
    def test_mutation_fuzz_only_raises_repro_errors(self):
        rng = random.Random(20260808)
        for _ in range(120):
            script = _mutate(rng.choice(VALID_SCRIPTS), rng)
            session = ISQLSession(backend=rng.choice(["explicit", "inline"]))
            session.register(
                "Flights", Relation(("Dep", "Arr"), [("FRA", "BCN"), ("PAR", "ATL")])
            )
            try:
                session.run_script(script)
            except ReproError:
                pass  # the only exception family allowed out
            except Exception as error:  # pragma: no cover - the failure path
                raise AssertionError(
                    f"non-ReproError {type(error).__name__} escaped for "
                    f"script {script!r}"
                ) from error

    def test_semantic_garbage_stays_inside_the_family(self, session):
        for script in [
            "select X from Flights;",
            "select Dep from Missing;",
            "insert into Flights values (1, 2, 3);",
            "update Flights set Gone = 1;",
            "H <- select * from Flights;H <- select * from Flights;",
            "select Dep from Flights group worlds by Dep;",  # needs a closing
        ]:
            with pytest.raises(ReproError):
                session.run_script(script)

    def test_internal_faults_surface_wrapped_with_cause(self, session):
        with inject_fault(1) as counter:
            with pytest.raises(ReproError) as info:
                session.query("select certain Arr from Flights choice of Dep;")
        assert counter.fired
        assert isinstance(info.value.__cause__, InjectedFault)
        assert "internal error" in str(info.value)

    def test_query_on_non_select_raises_library_error(self, session):
        with pytest.raises(ReproError):
            session.query("insert into Flights values ('LIS', 'FRA');")
