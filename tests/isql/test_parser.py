"""The I-SQL grammar of Figure 1, clause by clause."""

import pytest

from repro.errors import ParseError
from repro.isql import ast, parse_query, parse_script, parse_statement


class TestSelectCore:
    def test_star(self):
        q = parse_query("select * from Flights")
        assert isinstance(q.select_list, ast.Star)
        assert q.from_items == (ast.TableRef("Flights", "Flights"),)

    def test_column_list_with_aliases(self):
        q = parse_query("select R1.CID, R1.EID as E from Company_Emp R1")
        items = q.select_list
        assert items[0].expression == ast.Column("R1", "CID")
        assert items[1].alias == "E"

    def test_closing_markers(self):
        assert parse_query("select possible CID from W").closing == "possible"
        assert parse_query("select certain Arr from F").closing == "certain"
        assert parse_query("select Arr from F").closing is None

    def test_from_subquery_with_alias(self):
        q = parse_query("select * from (select * from U choice of EID) R2")
        item = q.from_items[0]
        assert isinstance(item, ast.SubqueryRef) and item.alias == "R2"
        assert item.query.choice_of == ("EID",)

    def test_from_subquery_gets_fresh_alias(self):
        q = parse_query("select * from (select * from U)")
        assert q.from_items[0].alias.startswith("_t")

    def test_where_condition_tree(self):
        q = parse_query(
            "select * from R where A = 1 and (B != 2 or not C = 'x')"
        )
        assert isinstance(q.where, ast.BoolOp) and q.where.op == "and"
        right = q.where.right
        assert isinstance(right, ast.BoolOp) and right.op == "or"
        assert isinstance(right.right, ast.NotOp)


class TestWorldClauses:
    def test_choice_of(self):
        q = parse_query("select * from Flights choice of Dep")
        assert q.choice_of == ("Dep",)

    def test_choice_of_multiple(self):
        q = parse_query("select * from R choice of A, B")
        assert q.choice_of == ("A", "B")

    def test_repair_by_key(self):
        q = parse_query("select * from Census repair by key SSN")
        assert q.repair_by_key == ("SSN",)

    def test_group_worlds_by_attrs(self):
        q = parse_query("select certain A from R group worlds by A, B")
        assert q.group_worlds_by == ast.GroupWorldsBy(attributes=("A", "B"))

    def test_group_worlds_by_subquery(self):
        q = parse_query(
            "select certain CID, Skill from V group worlds by (select CID from V)"
        )
        clause = q.group_worlds_by
        assert clause.query is not None and clause.attributes is None

    def test_group_by_versus_group_worlds_by(self):
        q = parse_query(
            "select Year, sum(Price) as Revenue from L group by Year"
        )
        assert q.group_by == ("Year",) and q.group_worlds_by is None

    def test_clauses_in_figure1_order(self):
        q = parse_query(
            "select certain A from R where A = 1 group by A "
            "choice of A repair by key A group worlds by A"
        )
        assert q.group_by == ("A",)
        assert q.choice_of == ("A",)
        assert q.repair_by_key == ("A",)
        assert q.group_worlds_by == ast.GroupWorldsBy(attributes=("A",))


class TestExpressions:
    def test_aggregates(self):
        q = parse_query("select sum(Price), count(*), min(A.B) from L")
        items = q.select_list
        assert items[0].expression == ast.Aggregate("sum", ast.Column(None, "Price"))
        assert items[1].expression == ast.Aggregate("count", None)
        assert items[2].expression == ast.Aggregate("min", ast.Column("A", "B"))

    def test_arithmetic_precedence(self):
        q = parse_query("select * from R where A + B * 2 > 7")
        comparison = q.where
        assert isinstance(comparison.left, ast.Arithmetic)
        assert comparison.left.op == "+"
        assert comparison.left.right.op == "*"

    def test_scalar_subquery_in_condition(self):
        q = parse_query(
            "select * from L where (select sum(Price) from L) - 5 > 0"
        )
        left = q.where.left
        assert isinstance(left, ast.Arithmetic)
        assert isinstance(left.left, ast.ScalarSubquery)

    def test_in_and_not_in(self):
        q = parse_query("select * from L where Quantity not in (select * from L)")
        assert isinstance(q.where, ast.InSubquery) and q.where.negated
        q2 = parse_query("select * from L where A in (select * from L)")
        assert not q2.where.negated

    def test_exists_and_not_exists(self):
        q = parse_query("select * from F where not exists (select * from F)")
        assert isinstance(q.where, ast.ExistsSubquery) and q.where.negated

    def test_negative_literals(self):
        q = parse_query("select * from R where A > -5")
        assert q.where.right == ast.Literal(-5)

    def test_string_literals(self):
        q = parse_query("select * from F where Arr = 'BCN'")
        assert q.where.right == ast.Literal("BCN")


class TestStatements:
    def test_create_view(self):
        s = parse_statement("create view HFlights as select * from Flights")
        assert isinstance(s, ast.CreateView) and s.name == "HFlights"

    def test_assignment_arrow(self):
        s = parse_statement("U <- select * from Company_Emp choice of CID;")
        assert isinstance(s, ast.Assignment) and s.name == "U"

    def test_insert(self):
        s = parse_statement("insert into Flights values ('FRA', 'LIS')")
        assert s == ast.Insert("Flights", ("FRA", "LIS"))

    def test_insert_numbers(self):
        s = parse_statement("insert into R values (1, -2, 3.5)")
        assert s.values == (1, -2, 3.5)

    def test_delete(self):
        s = parse_statement("delete from Flights where Arr = 'ATL'")
        assert isinstance(s, ast.Delete) and s.where is not None
        assert parse_statement("delete from Flights").where is None

    def test_update(self):
        s = parse_statement("update R set A = A + 1, B = 0 where A > 2")
        assert isinstance(s, ast.Update)
        assert [c.attribute for c in s.settings] == ["A", "B"]

    def test_script_parses_multiple_statements(self):
        script = parse_script(
            "U <- select * from C choice of CID; select possible CID from U;"
        )
        assert len(script) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("select * from R where A = 1 garbage")

    def test_bare_ident_after_table_is_an_alias(self):
        q = parse_query("select * from R extra")
        assert q.from_items[0].alias == "extra"

    def test_bad_statement_start(self):
        with pytest.raises(ParseError, match="unexpected statement"):
            parse_statement("frobnicate the database")

    def test_parse_query_rejects_dml(self):
        with pytest.raises(ParseError):
            parse_query("delete from R")


class TestPaperQueries:
    """Every I-SQL statement printed in the paper parses."""

    PAPER_STATEMENTS = [
        "select * from Company_Emp choice of CID;",
        """select R1.CID, R1.EID
           from Company_Emp R1, (select * from U choice of EID) R2
           where R1.CID = R2.CID and R1.EID != R2.EID;""",
        """select certain CID, Skill from V, Emp_Skill
           where V.EID = Emp_Skill.EID
           group worlds by (select CID from V);""",
        "select possible CID from W where Skill = 'Web';",
        "create view HFlights as select * from Flights where Dep in (select * from Hometowns);",
        "select certain Arr from HFlights choice of Dep;",
        """select Arr from HFlights F1
           where not exists
             (select * from HFlights F2
              where not exists
                (select * from HFlights F3
                 where F3.Dep = F2.Dep and F3.Arr = F1.Arr));""",
        """create view YearQuantity as
           select A.Year, sum(A.Price) as Revenue
           from (select * from Lineitem choice of Year) as A
           where Quantity not in
             (select * from Lineitem choice of Quantity)
           group by A.Year;""",
        """select possible Year from YearQuantity as Y
           where (select sum(Price) from Lineitem
                  where Lineitem.Year = Y.Year)
                 - Y.Revenue > 1000000;""",
        "select * from Census repair by key SSN;",
        "select * from R repair by key A;",
        "select * from Flights where Arr = 'BCN';",
        "delete from Flights where Arr = 'ATL';",
    ]

    @pytest.mark.parametrize("statement", PAPER_STATEMENTS)
    def test_parses(self, statement):
        parse_statement(statement)
