"""I-SQL data manipulation: per-world semantics plus the discard rule."""

import pytest

from repro.isql import ISQLSession
from repro.relational import Relation


@pytest.fixture
def session(flights):
    s = ISQLSession()
    s.register("Flights", flights)
    return s


class TestInsert:
    def test_insert_applies_in_every_world(self, session):
        session.execute("F <- select * from Flights choice of Dep;")
        session.execute("insert into F values ('XXX', 'YYY');")
        for world in session.world_set.worlds:
            assert ("XXX", "YYY") in world["F"]

    def test_insert_violating_key_is_discarded_everywhere(self, session):
        """Section 3: 'the update is discarded in all worlds'."""
        session.execute("F <- select * from Flights choice of Dep;")
        session.declare_key("F", ("Dep",))
        # ('FRA', 'LIS') violates the Dep-key only in the FRA world.
        result = session.execute("insert into F values ('FRA', 'LIS');")[0]
        assert not result.applied
        for world in session.world_set.worlds:
            assert ("FRA", "LIS") not in world["F"]

    def test_insert_ok_when_no_world_violates(self, session):
        session.execute("F <- select * from Flights choice of Dep;")
        session.declare_key("F", ("Dep", "Arr"))
        result = session.execute("insert into F values ('NEW', 'CITY');")[0]
        assert result.applied

    def test_arity_checked(self, session):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            session.execute("insert into Flights values ('FRA');")


class TestDelete:
    def test_example_32_delete_atl(self, session):
        """Example 3.2 / Figure 2 (c): deleting Arr='ATL' per world."""
        session.execute("F <- select * from Flights choice of Dep;")
        session.execute("delete from F where Arr = 'ATL';")
        answers = {frozenset(w["F"].rows) for w in session.world_set.worlds}
        assert answers == {
            frozenset({("FRA", "BCN")}),
            frozenset({("PAR", "BCN")}),
            frozenset(),
        }

    def test_delete_without_where_empties(self, session):
        session.execute("delete from Flights;")
        for world in session.world_set.worlds:
            assert not world["Flights"]

    def test_worlds_may_collapse_after_delete(self, session):
        session.execute("F <- select * from Flights choice of Dep;")
        assert session.world_count() == 3
        session.execute("delete from F;")
        # All F's now empty; worlds differ only in base Flights (equal),
        # so they collapse to a single world.
        assert session.world_count() == 1


class TestUpdate:
    def test_update_applies_per_world(self, session):
        session.execute("update Flights set Arr = 'LIS' where Arr = 'BCN';")
        result = session.query("select Arr from Flights;")
        assert result.relation.rows == {("ATL",), ("LIS",)}

    def test_update_arithmetic(self):
        s = ISQLSession()
        s.register("R", Relation(("A", "B"), [(1, 10), (2, 20)]))
        s.execute("update R set B = B + 5 where A = 1;")
        result = s.query("select * from R;")
        assert result.relation.rows == {(1, 15), (2, 20)}

    def test_update_violating_key_is_discarded(self):
        s = ISQLSession()
        s.register("R", Relation(("A", "B"), [(1, 10), (2, 20)]))
        s.declare_key("R", ("A",))
        result = s.execute("update R set A = 1 where A = 2;")[0]
        assert not result.applied
        assert s.query("select * from R;").relation.rows == {(1, 10), (2, 20)}
