"""The statement cache (PR 10): plan cache, result memo, parse cache.

Unit coverage for :mod:`repro.cache` and its wiring through the inline
backend and the session:

* plan-cache keying — a re-executed statement hits, textual
  reformatting still hits (the key is the span-insensitive AST),
  schema changes (register / assign) and world-kind flips miss;
* result-memo precision — DML on relation B must not invalidate a
  memoized select over relation A, while DML on A must;
* versions ride the state — savepoint rollback and snapshot restore
  re-hit the memo entries of the restored state, never a stale one;
* the ``cache=False`` escape hatch at session, per-call, and backend
  construction level;
* ``close()`` detaches a session from a shared cache without clearing
  it for its siblings;
* LRU bounds and the eviction/invalidation counters;
* the :class:`~repro.isql.session.StatementResult` unification and the
  ``run()`` / ``cache_info()`` surface.
"""

from __future__ import annotations

import pytest

from repro.backend import ExplicitBackend, InlineBackend
from repro.cache import MISS, CacheInfo, LRUCache, StatementCache
from repro.errors import EvaluationError
from repro.isql import ISQLSession
from repro.isql.session import DMLResult, StatementResult
from repro.relational import Relation


def _session(cache: bool = True, **kwargs) -> ISQLSession:
    session = ISQLSession(backend=InlineBackend(**kwargs), cache=cache)
    session.register("A", Relation(("X", "Y"), [(1, 10), (2, 20), (3, 30)]))
    session.register("B", Relation(("P",), [(1,), (2,)]))
    return session


SELECT_A = "select possible X from A;"
SELECT_B = "select possible P from B;"


def _cache_of(result: StatementResult) -> str:
    return result.cache


def _last(session: ISQLSession, script: str) -> StatementResult:
    return session.run(script)[-1]


# -- plan cache keying ---------------------------------------------------------------


def test_repeated_statement_is_a_plan_cache_hit():
    session = _session()
    assert _cache_of(_last(session, SELECT_A)) == "miss"
    assert _cache_of(_last(session, SELECT_A)) == "hit"
    info = session.cache_info()
    assert info.hits > 0 and info.entries > 0


def test_reformatted_statement_still_hits():
    """The plan key is the parsed AST with spans excluded from equality,
    so whitespace/case-of-keyword changes reuse the compiled plan."""
    session = _session()
    session.run(SELECT_A)
    reformatted = "select   possible\n X\nfrom A ;"
    assert _cache_of(_last(session, reformatted)) == "hit"


def test_answers_identical_on_hit():
    session = _session()
    first = _last(session, SELECT_A)
    second = _last(session, SELECT_A)
    assert second.cache == "hit"
    assert first.answers() == second.answers()
    assert first.relation.sorted_rows() == second.relation.sorted_rows()


def test_registering_a_relation_changes_the_catalog_key():
    """A new relation can capture previously-unknown names, so the plan
    key includes the catalog: registering forces a recompile. The
    result *memo* still hits, though — registering C carries A's table
    version — so the statement's overall disposition stays "hit"."""
    session = _session()
    session.run(SELECT_A)
    plans = session.backend.cache.plans
    misses_before = plans.misses
    session.register("C", Relation(("Z",), [(9,)]))
    result = _last(session, SELECT_A)
    assert plans.misses == misses_before + 1
    assert result.cache == "hit"
    assert result.relation.sorted_rows() == [(1,), (2,), (3,)]


def test_world_kind_flip_recompiles():
    """The optimizer rewrite can depend on whether the session is in a
    single world; moving to many worlds must not reuse the one-world
    plan."""
    session = _session()
    session.run(SELECT_A)
    result = _last(session, "Split <- select * from A choice of Y;" + SELECT_A)
    assert result.cache == "miss"
    assert _cache_of(_last(session, SELECT_A)) == "hit"


def test_dml_plans_are_cached_too():
    """Subquery-bearing DML compiles a match plan, and that compiled
    (and rewritten) plan is cached. (Subquery-free DML is one direct
    kernel pass with nothing to compile, and DML coalesced into a
    batch takes the batch pipeline — both truthfully report
    ``cache="bypass"``.)"""
    session = _session()
    delete = "delete from B where exists (select * from A where X = 99);"
    session.execute(delete)
    assert session.backend.last_cache == "miss"
    session.execute(delete)
    assert session.backend.last_cache == "hit"
    session.execute("delete from B where P = 7;")
    assert session.backend.last_cache == "bypass"  # subquery-free: no plan


# -- result memo precision -----------------------------------------------------------


def test_dml_on_other_table_keeps_the_memo(monkeypatch):
    """Inserting into B bumps only B's version: the memoized state for
    the select over A is still served, with no re-evaluation."""
    session = _session()
    session.run(SELECT_A)
    session.run("insert into B values (5);")

    def boom(*args, **kwargs):  # pragma: no cover - must not be reached
        raise AssertionError("memo miss: select over A was re-evaluated")

    monkeypatch.setattr(session.backend, "_evaluate", boom)
    result = _last(session, SELECT_A)
    assert result.cache == "hit"
    assert result.relation.sorted_rows() == [(1,), (2,), (3,)]


def test_dml_on_read_table_invalidates_the_memo():
    session = _session()
    session.run(SELECT_A)
    session.run("insert into A values (4, 40);")
    result = _last(session, SELECT_A)
    # The plan is still valid (same AST, same catalog) but the memoized
    # result is not: the fresh answer must include the new row.
    assert (4,) in result.relation.rows


def test_update_and_delete_invalidate_the_memo():
    session = _session()
    baseline = _last(session, SELECT_A).relation.sorted_rows()
    session.run("update A set X = X + 10 where Y = 10;")
    after_update = _last(session, SELECT_A).relation.sorted_rows()
    assert after_update != baseline and (11,) in after_update
    session.run("delete from A where X = 11;")
    after_delete = _last(session, SELECT_A).relation.sorted_rows()
    assert (11,) not in after_delete


def test_savepoint_rollback_rehits_the_memo(monkeypatch):
    """Versions live inside the representation, so rolling back restores
    the exact versions the memo entry was keyed on."""
    session = _session()
    before = _last(session, SELECT_A)
    mark = session.savepoint()
    session.run("insert into A values (4, 40);")
    assert (4,) in _last(session, SELECT_A).relation.rows
    session.rollback_to(mark)
    session.release(mark)
    monkeypatch.setattr(
        session.backend,
        "_evaluate",
        lambda *a, **k: pytest.fail("memo miss after rollback"),
    )
    replay = _last(session, SELECT_A)
    assert replay.cache == "hit"
    assert replay.relation.sorted_rows() == before.relation.sorted_rows()


def test_snapshot_restore_carries_versions():
    session = _session()
    token = session.export_snapshot()
    session.run("insert into A values (4, 40);")
    grown = _last(session, SELECT_A)
    assert (4,) in grown.relation.rows
    session.restore_snapshot(token)
    shrunk = _last(session, SELECT_A)
    assert shrunk.cache == "hit"
    assert (4,) not in shrunk.relation.rows


def test_rollback_then_redo_does_not_alias_versions():
    """Re-running the same insert after a rollback mints a *fresh*
    version (the ticker is global, never reset), so the post-insert
    memo entry from the first timeline cannot be served for the second
    timeline unless the states really coincide — and when they do
    coincide the answers agree, which is what we assert."""
    session = _session()
    mark = session.savepoint()
    session.run("insert into A values (4, 40);")
    first = _last(session, SELECT_A).relation.sorted_rows()
    session.rollback_to(mark)
    session.release(mark)
    session.run("insert into A values (4, 40);")
    second = _last(session, SELECT_A).relation.sorted_rows()
    assert second == first


def test_fresh_world_id_statements_never_memoize():
    """choice-of (and repair) mint fresh world ids per evaluation; the
    memo must not replay them."""
    session = _session()
    script = "Split <- select * from A choice of Y;"
    session.run(script)
    worlds = session.world_count()
    session.run("Split2 <- select * from A choice of Y;" + SELECT_A)
    assert session.world_count() == worlds * worlds


# -- the cache=False escape hatch ----------------------------------------------------


def test_session_level_cache_off_bypasses():
    session = _session(cache=False)
    assert _cache_of(_last(session, SELECT_A)) == "bypass"
    assert _cache_of(_last(session, SELECT_A)) == "bypass"
    info = session.cache_info()
    assert info.hits == 0 and info.entries == 0


def test_per_call_cache_override():
    session = _session()
    session.run(SELECT_A)
    assert _cache_of(session.run(SELECT_A, cache=False)[-1]) == "bypass"
    # The session default is untouched; the entry is still warm.
    assert _cache_of(_last(session, SELECT_A)) == "hit"


def test_backend_constructed_without_cache():
    session = ISQLSession(backend=InlineBackend(cache=False))
    session.register("A", Relation(("X",), [(1,)]))
    assert session.backend.cache is None
    assert _cache_of(_last(session, "select possible X from A;")) == "bypass"
    assert session.cache_info() == CacheInfo.empty()


def test_explicit_backend_reports_empty_cache_info():
    session = ISQLSession(backend=ExplicitBackend())
    session.register("A", Relation(("X",), [(1,)]))
    session.query("select possible X from A;")
    assert session.cache_info() == CacheInfo.empty()


def test_backend_rejects_bogus_cache_argument():
    with pytest.raises(EvaluationError):
        InlineBackend(cache="yes please")


# -- sharing and detaching -----------------------------------------------------------


def test_fork_shares_the_cache():
    session = _session()
    session.run(SELECT_A)
    fork = session.fork()
    assert fork.backend.cache is session.backend.cache
    assert _cache_of(_last(fork, SELECT_A)) == "hit"


def test_close_detaches_without_clearing_for_siblings():
    session = _session()
    session.run(SELECT_A)
    fork = session.fork()
    shared = session.backend.cache
    entries_before = shared.info().entries
    fork.close()
    assert fork.backend.cache is not shared
    assert len(fork.backend.cache.plans) == 0
    # The shared cache still holds the sibling's entries.
    assert shared.info().entries == entries_before
    assert _cache_of(_last(session, SELECT_A)) == "hit"


def test_close_preserves_configured_bounds():
    backend = InlineBackend(cache=StatementCache(plan_entries=7, memo_entries=3))
    backend.close()
    assert backend.cache.plans.maxsize == 7
    assert backend.cache.memo.maxsize == 3


def test_shared_statement_cache_instance():
    shared = StatementCache()
    first = ISQLSession(backend=InlineBackend(cache=shared))
    second = ISQLSession(backend=InlineBackend(cache=shared))
    for session in (first, second):
        session.register("A", Relation(("X", "Y"), [(1, 10)]))
    first.run(SELECT_A)
    # Same AST, same catalog, same world kind: the second session's
    # first execution is already a plan hit (its fresh table versions
    # make the *memo* miss, which must not downgrade the plan hit).
    assert _cache_of(_last(second, SELECT_A)) == "hit"


# -- LRU mechanics -------------------------------------------------------------------


def test_lru_get_put_and_eviction_order():
    lru = LRUCache(maxsize=2)
    assert lru.get("a") is MISS
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1  # refreshes "a"
    lru.put("c", 3)  # evicts "b", the least recently used
    assert lru.get("b") is MISS
    assert lru.get("a") == 1 and lru.get("c") == 3
    assert len(lru) == 2
    assert lru.invalidations == 1


def test_lru_clear_counts_as_invalidations():
    lru = LRUCache(maxsize=4)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.clear()
    assert len(lru) == 0
    assert lru.invalidations == 2


def test_lru_info_counters():
    lru = LRUCache(maxsize=4)
    lru.get("missing")
    lru.put("a", 1)
    lru.get("a")
    info = lru.info()
    assert info.hits == 1 and info.misses == 1 and info.entries == 1


def test_plan_cache_is_bounded():
    session = _session(cache=True)
    session.backend.cache.plans.maxsize = 2
    session.run(SELECT_A)
    session.run(SELECT_B)
    session.run("select certain X from A;")
    assert len(session.backend.cache.plans) <= 2


def test_statement_cache_info_aggregates():
    cache = StatementCache()
    cache.plans.put("p", 1)
    cache.memo.put("m", 2)
    cache.parses.put("s", 3)
    cache.plans.get("p")
    cache.parses.get("nope")
    info = cache.info()
    assert info.entries == 3
    assert info.hits == 1 and info.misses == 1
    assert info.bytes_estimate > 0
    cache.clear()
    assert cache.info().entries == 0


# -- the parse cache -----------------------------------------------------------------


def test_script_text_parse_is_cached():
    session = _session()
    session.run(SELECT_A)
    parses = session.backend.cache.parses
    hits_before = parses.hits
    session.run(SELECT_A)
    assert parses.hits == hits_before + 1


# -- StatementResult -----------------------------------------------------------------


def test_run_returns_statement_results():
    session = _session()
    results = session.run(
        "insert into B values (3);"
        "V <- select possible P from B;"
        + SELECT_B
    )
    kinds = [result.kind for result in results]
    assert kinds == ["insert", "assign", "select"]
    dml, assign, select = results
    assert dml.applied is True and dml.applied_count == 1
    assert dml.answer is None
    assert assign.applied is None
    assert select.relation.sorted_rows() == [(1,), (2,), (3,)]
    assert select.answers() == select._answer().answers()
    assert select.world_count() == 1
    assert all(result.route == "inline" for result in results)


def test_statement_result_without_answer_raises():
    session = _session()
    (result,) = session.run("insert into B values (9);")
    with pytest.raises(EvaluationError):
        result.answers()
    with pytest.raises(EvaluationError):
        _ = result.relation


def test_rejected_dml_counts_zero():
    session = _session()
    session.declare_key("B", ("P",))
    (result,) = session.run("insert into B values (1);")  # duplicate key
    assert result.applied is False and result.applied_count == 0


def test_run_records_phase_timings():
    session = _session()
    (result,) = session.run(SELECT_A)
    assert "execute" in result.phases or "compile" in result.phases
    (again,) = session.run(SELECT_A)
    assert "cache_lookup" in again.phases


def test_old_shapes_still_work():
    """Backward compatibility: execute/run_script keep returning the
    legacy result objects (deprecated in favor of run())."""
    session = _session()
    legacy = session.execute("insert into B values (4);" + SELECT_B)
    assert isinstance(legacy[0], DMLResult)
    assert legacy[0].applied is True and legacy[0].kind == "insert"
    assert legacy[-1].answers() == session.query(SELECT_B).answers()


def test_statement_result_repr_mentions_cache():
    session = _session()
    (result,) = session.run(SELECT_A)
    assert "cache='miss'" in repr(result)


def test_public_exports():
    import repro

    assert repro.StatementResult is StatementResult
    assert repro.CacheInfo is CacheInfo
    assert repro.StatementCache is StatementCache
    assert "StatementResult" in repro.__all__
    assert "CacheInfo" in repro.__all__


def test_cache_info_shape():
    session = _session()
    session.run(SELECT_A)
    info = session.cache_info()
    assert isinstance(info, CacheInfo)
    assert set(info._fields) == {
        "hits",
        "misses",
        "entries",
        "invalidations",
        "bytes_estimate",
    }
