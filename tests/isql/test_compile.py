"""Compiling the I-SQL algebra fragment to world-set algebra (Section 4)."""

import pytest

from repro.core import answers as wsa_answers
from repro.core import evaluate
from repro.isql import FragmentError, ISQLSession, compile_query, parse_query
from repro.relational import Relation
from repro.worlds import World, WorldSet

SCHEMAS = {"Flights": ("Dep", "Arr")}


def engine_vs_algebra(text, relations):
    """Evaluate via the engine and via compile→Figure 3; compare."""
    session = ISQLSession()
    for name, relation in relations.items():
        session.register(name, relation)
    engine_result = session.query(text)

    query = compile_query(
        parse_query(text), {n: r.schema for n, r in relations.items()}
    )
    ws = WorldSet.single(World.of(relations))
    algebra_answers = wsa_answers(query, ws)
    return engine_result.answers(), algebra_answers


class TestCorrespondence:
    @pytest.mark.parametrize(
        "text",
        [
            "select * from Flights;",
            "select Arr from Flights;",
            "select Arr as City from Flights where Dep != 'PHL';",
            "select * from Flights where Arr = 'BCN';",
            "select * from Flights choice of Dep;",
            "select certain Arr from Flights choice of Dep;",
            "select possible Arr from Flights choice of Dep;",
            "select possible Dep from Flights choice of Dep, Arr;",
            "select certain Arr from Flights choice of Dep group worlds by Dep;",
            "select F1.Dep from Flights F1, Flights F2 "
            "where F1.Arr = F2.Arr and F1.Dep != F2.Dep;",
            "select * from (select * from Flights where Arr = 'ATL') F choice of Dep;",
            "select * from Flights repair by key Dep;",
        ],
    )
    def test_engine_matches_algebra(self, text, flights):
        engine_answers, algebra_answers = engine_vs_algebra(
            text, {"Flights": flights}
        )
        assert engine_answers == algebra_answers

    def test_compiled_trip_query_shape(self):
        query = compile_query(
            parse_query("select certain Arr from Flights choice of Dep;"),
            SCHEMAS,
        )
        from repro.core.ast import Cert, ChoiceOf

        assert isinstance(query, (Cert,)) or any(
            isinstance(n, Cert) for n in query.walk()
        )
        assert any(isinstance(n, ChoiceOf) for n in query.walk())

    def test_compiled_query_feeds_the_translators(self, flights):
        """The concluding vision: parse I-SQL, compile, translate to RA."""
        from repro.inline import optimized_ra_query
        from repro.relational import Database

        query = compile_query(
            parse_query("select certain Arr from Flights choice of Dep;"),
            SCHEMAS,
        )
        db = Database({"Flights": flights})
        expr = optimized_ra_query(query, SCHEMAS)
        assert expr.evaluate(db).rows == {("ATL",)}


class TestWidenedFragment:
    """Constructs the seed compiler rejected now compile to the algebra."""

    @pytest.mark.parametrize(
        "text",
        [
            "select count(Arr) as N from Flights;",
            "select min(Arr) as Lo, max(Arr) as Hi from Flights;",
            "select Dep, count(Arr) as N from Flights group by Dep;",
            "select Dep from Flights group by Dep;",
            "select * from Flights where Dep in (select Dep from Flights);",
            "select * from Flights where Dep not in "
            "(select Dep from Flights where Arr = 'ATL');",
            "select * from Flights F1 where exists "
            "(select * from Flights F2 where F2.Arr = F1.Arr and F2.Dep != F1.Dep);",
            "select certain Arr from Flights choice of Dep "
            "group worlds by (select Dep from Flights);",
            "select certain count(Arr) as N from Flights choice of Dep;",
        ],
    )
    def test_engine_matches_algebra_on_widened_constructs(self, text, flights):
        engine_answers, algebra_answers = engine_vs_algebra(
            text, {"Flights": flights}
        )
        assert engine_answers == algebra_answers

    def test_aggregation_compiles_to_aggregate_node(self):
        from repro.core.ast import Aggregate

        query = compile_query(
            parse_query("select Dep, sum(Arr) as S from Flights group by Dep;"),
            SCHEMAS,
        )
        assert any(isinstance(n, Aggregate) for n in query.walk())

    def test_membership_compiles_to_semijoin(self):
        from repro.core.ast import AntiJoin, SemiJoin

        query = compile_query(
            parse_query(
                "select * from Flights where Dep in (select Dep from Flights);"
            ),
            SCHEMAS,
        )
        assert any(isinstance(n, SemiJoin) for n in query.walk())
        negated = compile_query(
            parse_query(
                "select * from Flights where Dep not in (select Dep from Flights);"
            ),
            SCHEMAS,
        )
        assert any(isinstance(n, AntiJoin) for n in negated.walk())

    def test_group_worlds_by_subquery_compiles_keyed(self):
        from repro.core.ast import CertGroupKey

        query = compile_query(
            parse_query(
                "select certain Arr from Flights choice of Dep "
                "group worlds by (select Dep from Flights);"
            ),
            SCHEMAS,
        )
        assert any(isinstance(n, CertGroupKey) for n in query.walk())


class TestDrainedResidue:
    """ISSUE 4 constructs now compile instead of raising FragmentError."""

    def test_subquery_under_or_compiles_to_union_of_chains(self):
        from repro.core.ast import SemiJoin, Union

        query = compile_query(
            parse_query(
                "select * from Flights where Arr = 'ATL' or "
                "Dep in (select Dep from Flights);"
            ),
            SCHEMAS,
        )
        assert any(isinstance(n, Union) for n in query.walk())
        assert any(isinstance(n, SemiJoin) for n in query.walk())

    def test_non_aggregate_scalar_subquery_compiles_single(self):
        from repro.core.ast import Aggregate

        query = compile_query(
            parse_query(
                "select * from Flights where Dep = "
                "(select Dep from Flights where Arr = 'PHL');"
            ),
            SCHEMAS,
        )
        singles = [
            node
            for node in query.walk()
            if isinstance(node, Aggregate)
            and any(spec.function == "single" for spec in node.specs)
        ]
        assert singles

    def test_negation_pushes_onto_subquery_atoms(self):
        from repro.core.ast import AntiJoin, Union

        query = compile_query(
            parse_query(
                "select * from Flights where not (Arr = 'ATL' and "
                "Dep in (select Dep from Flights));"
            ),
            SCHEMAS,
        )
        # ¬(A ∧ B) = ¬A ∨ ¬B: a union whose subquery branch is an antijoin.
        assert any(isinstance(n, Union) for n in query.walk())
        assert any(isinstance(n, AntiJoin) for n in query.walk())


class TestFragmentBoundaries:
    """The remaining residue still routes through the explicit engine."""

    def test_ungrouped_select_column_rejected(self):
        with pytest.raises(FragmentError, match="GROUP BY"):
            compile_query(
                parse_query("select Arr, count(Dep) from Flights group by Dep;"),
                SCHEMAS,
            )

    def test_or_over_world_splitting_plan_rejected(self):
        # The union-of-chains form duplicates the outer plan per
        # disjunct; a plan that splits worlds cannot be duplicated.
        with pytest.raises(FragmentError, match="splits worlds"):
            compile_query(
                parse_query(
                    "select * from (select * from Flights choice of Dep) F "
                    "where Arr = 'ATL' or Dep in (select Dep from Flights);"
                ),
                SCHEMAS,
            )

    def test_star_scalar_subquery_rejected(self):
        with pytest.raises(FragmentError, match="scalar"):
            compile_query(
                parse_query(
                    "select * from Flights where Dep = "
                    "(select * from Flights where Arr = 'PHL');"
                ),
                SCHEMAS,
            )

    def test_fragment_error_carries_clause_and_span(self):
        text = (
            "select * from Flights where Arr = 'ATL' and "
            "'X' in (select Dep from Flights);"
        )
        with pytest.raises(FragmentError) as excinfo:
            compile_query(parse_query(text), SCHEMAS)
        assert excinfo.value.clause == "where"

    def test_unknown_relation(self):
        with pytest.raises(FragmentError, match="unknown relation"):
            compile_query(parse_query("select * from Missing;"), SCHEMAS)

    def test_ambiguous_column(self):
        with pytest.raises(FragmentError, match="ambiguous"):
            compile_query(
                parse_query("select Dep from Flights F1, Flights F2;"), SCHEMAS
            )

    def test_views_are_inlined(self, flights):
        from repro.isql import parse_statement

        view = parse_statement("create view V as select Arr from Flights;")
        query = compile_query(
            parse_query("select * from V;"), SCHEMAS, views={"V": view.query}
        )
        ws = WorldSet.single(World.of({"Flights": flights}))
        result = evaluate(query, ws, name="Q")
        assert result.the_world()["Q"].rows == {("ATL",), ("BCN",)}
