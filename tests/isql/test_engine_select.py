"""The I-SQL engine: core select evaluation within worlds."""

import pytest

from repro.errors import EvaluationError
from repro.isql import ISQLSession
from repro.relational import Relation


@pytest.fixture
def session(flights):
    s = ISQLSession()
    s.register("Flights", flights)
    return s


class TestBasicSelect:
    def test_star(self, session, flights):
        result = session.query("select * from Flights;")
        assert result.relation == flights

    def test_projection_renames_to_output_names(self, session):
        result = session.query("select Arr from Flights;")
        assert result.relation.schema.attributes == ("Arr",)
        assert ("ATL",) in result.relation

    def test_where_filters(self, session):
        result = session.query("select * from Flights where Arr = 'BCN';")
        assert result.relation.rows == {("FRA", "BCN"), ("PAR", "BCN")}

    def test_column_alias(self, session):
        result = session.query("select Arr as City from Flights;")
        assert result.relation.schema.attributes == ("City",)

    def test_qualified_references(self, session):
        result = session.query(
            "select F.Arr from Flights F where F.Dep = 'PHL';"
        )
        assert result.relation.rows == {("ATL",)}

    def test_self_join_with_aliases(self, session):
        result = session.query(
            "select F1.Dep, F2.Dep as Other from Flights F1, Flights F2 "
            "where F1.Arr = F2.Arr and F1.Dep != F2.Dep;"
        )
        assert ("FRA", "PAR") in result.relation

    def test_ambiguous_column_rejected(self, session):
        with pytest.raises(EvaluationError, match="ambiguous"):
            session.query("select Dep from Flights F1, Flights F2;")

    def test_unknown_column_rejected(self, session):
        with pytest.raises(EvaluationError, match="unresolved|unknown"):
            session.query("select * from Flights where Missing = 1;")

    def test_set_semantics_deduplicate(self, session):
        result = session.query("select Arr from Flights where Arr = 'ATL';")
        assert len(result.relation) == 1


class TestSubqueries:
    def test_from_subquery(self, session):
        result = session.query(
            "select Arr from (select * from Flights where Dep = 'FRA') F;"
        )
        assert result.relation.rows == {("BCN",), ("ATL",)}

    def test_exists(self, session):
        result = session.query(
            "select Dep from Flights F1 where exists "
            "(select * from Flights F2 where F2.Arr = F1.Arr and F2.Dep != F1.Dep);"
        )
        assert ("PHL",) in result.relation  # ATL shared with FRA and PAR

    def test_double_not_exists_division(self, session):
        """The Section 2 SQL simulation of division: certain arrivals."""
        result = session.query(
            """select Arr from Flights F1
               where not exists
                 (select * from Flights F2
                  where not exists
                    (select * from Flights F3
                     where F3.Dep = F2.Dep and F3.Arr = F1.Arr));"""
        )
        assert result.relation.rows == {("ATL",)}

    def test_in_with_bare_relation(self, flights):
        s = ISQLSession()
        s.register("Flights", flights)
        s.register("Hometowns", Relation(("Dep",), [("FRA",), ("PAR",)]))
        result = s.query("select * from Flights where Dep in Hometowns;")
        assert len(result.relation) == 4

    def test_scalar_subquery_value(self, session):
        result = session.query(
            "select Dep from Flights F where "
            "(select count(Arr) from Flights G where G.Dep = F.Dep) > 1;"
        )
        assert result.relation.rows == {("FRA",), ("PAR",)}


class TestViews:
    def test_view_expansion_in_from(self, session):
        session.execute(
            "create view Short as select * from Flights where Arr = 'ATL';"
        )
        result = session.query("select Dep from Short;")
        assert result.relation.rows == {("FRA",), ("PAR",), ("PHL",)}

    def test_view_of_view(self, session):
        session.execute("create view V1 as select * from Flights;")
        session.execute("create view V2 as select Dep from V1;")
        assert len(session.query("select * from V2;").relation) == 3
