"""The docs/isql-reference.md routing table cannot drift from the compiler.

Every row of the reference's routing table carries a representative
statement; this test parses the markdown and cross-checks each row's
claimed route against ``repro.isql.inline_route_report`` over the same
schemas the document assumes. A compiler change that re-routes a
construct fails here until the table is updated — the documentation is
kept honest mechanically.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.isql import inline_route_report

DOC = Path(__file__).resolve().parents[2] / "docs" / "isql-reference.md"

#: The schemas the document's representative statements assume.
SCHEMAS = {
    "Flights": ("Dep", "Arr"),
    "Hotels": ("Name", "City", "Price"),
}

ROW = re.compile(
    r"^\|\s*(?P<construct>[^|]+?)\s*\|\s*(?P<route>direct|fallback)\s*\|"
    r"[^|]*\|\s*`(?P<statement>[^`]+)`\s*\|\s*$"
)


def routing_rows() -> list[tuple[str, str, str]]:
    rows = []
    for line in DOC.read_text().splitlines():
        match = ROW.match(line)
        if match:
            rows.append(
                (
                    match.group("construct"),
                    match.group("route"),
                    match.group("statement"),
                )
            )
    return rows


def test_table_was_parsed():
    rows = routing_rows()
    assert len(rows) >= 20, rows
    routes = {route for _, route, _ in rows}
    assert routes == {"direct", "fallback"}


@pytest.mark.parametrize(
    "construct,route,statement",
    routing_rows(),
    ids=[construct for construct, _, _ in routing_rows()],
)
def test_routing_table_matches_compiler(construct, route, statement):
    report = inline_route_report(statement, SCHEMAS)
    assert report.route == route, (
        f"docs/isql-reference.md row {construct!r} claims {route!r} but the "
        f"compiler routes it {report.route!r}"
        + (f" ({report.reason})" if report.reason else "")
    )
