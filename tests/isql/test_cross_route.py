"""Cross-route property test: three evaluation paths for random I-SQL.

A small generator produces random I-SQL queries of the algebra fragment
over a random complete database; each query is evaluated by

1. the I-SQL engine (Section 3 order of evaluation),
2. compilation to world-set algebra + the Figure 3 semantics,
3. (when 1↦1) the §5.3 optimized relational translation,

and all routes must agree. This is the strongest integration property
in the suite: it crosses the parser, compiler, typing, both evaluators,
and the translator in one assertion.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import answers as algebra_answers
from repro.core.typing import is_complete_to_complete
from repro.datagen import random_relation
from repro.isql import ISQLSession, compile_query, parse_query, run_via_translation
from repro.relational import Database
from repro.worlds import World, WorldSet

ATTRS = ("A", "B")


def random_fragment_query(rng: random.Random) -> str:
    """A random algebra-fragment I-SQL query over R(A, B)."""
    select_list = rng.choice(["*", "A", "B", "A, B", "B, A", "A as X"])
    closing = rng.choice(["", "possible ", "certain "])
    where = rng.choice(
        [
            "",
            " where A = 1",
            " where A != B",
            " where A = 2 and B != 0",
            " where A = 1 or B = 1",
        ]
    )
    choice = rng.choice(["", " choice of A", " choice of B", " choice of A, B"])
    grouping = ""
    if closing and choice and rng.random() < 0.4:
        grouping = " group worlds by A"
        if select_list in ("*", "B", "B, A", "A as X"):
            select_list = "A"  # keep the grouped projection well-formed
    if not closing:
        grouping = ""
    return (
        f"select {closing}{select_list} from R{where}{choice}{grouping};"
    )


@given(st.integers(0, 30_000))
@settings(max_examples=120, deadline=None)
def test_three_routes_agree(seed):
    rng = random.Random(seed)
    relation = random_relation(ATTRS, rng, max_rows=6)
    text = random_fragment_query(rng)

    # Route 1: the I-SQL engine.
    session = ISQLSession()
    session.register("R", relation)
    engine = session.query(text).answers()

    # Route 2: compile to world-set algebra, evaluate per Figure 3.
    query = compile_query(parse_query(text), {"R": ATTRS})
    ws = WorldSet.single(World.of({"R": relation}))
    algebra = algebra_answers(query, ws)
    assert engine == algebra, text

    # Route 3: the relational translation, for 1↦1 queries.
    if is_complete_to_complete(query):
        relational = run_via_translation(text, Database({"R": relation}))
        assert engine == frozenset({relational}), text


@given(st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_engine_is_deterministic_across_sessions(seed):
    rng = random.Random(seed)
    relation = random_relation(ATTRS, rng, max_rows=5)
    text = random_fragment_query(rng)

    def run():
        session = ISQLSession()
        session.register("R", relation)
        return session.query(text).answers()

    assert run() == run()
