"""The §8 pipeline: I-SQL → WSA → relational algebra, end to end."""

import pytest

from repro.errors import TypingError
from repro.datagen import paper_flights
from repro.isql import ISQLSession, explain, parse_statement, run_via_translation
from repro.relational import Database

SCHEMAS = {"Flights": ("Dep", "Arr")}
TRIP = "select certain Arr from Flights choice of Dep;"


class TestExplain:
    def test_full_pipeline_for_c2c_query(self):
        report = explain(TRIP, SCHEMAS, assume_nonempty=True)
        assert report.complete_to_complete
        assert report.type == "1↦1, m↦1"
        assert "χ[" in report.algebra.to_text()
        assert report.relational_optimized.to_text() == (
            "(π[Arr,Dep](Flights) ÷ π[Dep](Flights))"
        )
        assert report.relational_general is not None

    def test_open_query_has_no_relational_form(self):
        report = explain("select * from Flights choice of Dep;", SCHEMAS)
        assert not report.complete_to_complete
        assert report.relational_optimized is None
        assert "not 1↦1" in report.render()

    def test_render_contains_every_layer(self):
        text = explain(TRIP, SCHEMAS, assume_nonempty=True).render()
        assert "world-set algebra" in text
        assert "type" in text
        assert "§5.3" in text and "Fig.6" in text

    def test_views_are_supported(self):
        view = parse_statement(
            "create view HF as select * from Flights where Dep != 'PHL';"
        )
        report = explain(
            "select certain Arr from HF choice of Dep;",
            SCHEMAS,
            views={"HF": view.query},
        )
        assert report.complete_to_complete


class TestInlineRouteReport:
    """Fallback diagnostics carry the offending clause and source span."""

    def test_direct_statement_has_no_diagnostics(self):
        from repro.isql import inline_route_report

        report = inline_route_report(TRIP, SCHEMAS)
        assert report.route == "direct"
        assert report.reason is None
        assert report.clause is None and report.span is None

    def test_widened_constructs_route_direct(self):
        from repro.isql import inline_route_report

        for text in (
            "select count(Arr) as N from Flights;",
            "select Dep, count(*) as N from Flights group by Dep;",
            "select * from Flights where Dep in (select Dep from Flights);",
            "select certain Arr from Flights choice of Dep "
            "group worlds by (select Dep from Flights);",
            # ISSUE 4: disjunctions, non-aggregate scalar subqueries and
            # DML with subqueries joined the fragment.
            "select * from Flights where Arr = 'ATL' or "
            "Dep in (select Dep from Flights);",
            "select * from Flights where Arr = "
            "(select Arr from Flights where Dep = 'PHL');",
            "delete from Flights where Dep in (select Dep from Flights);",
            "update Flights set Arr = (select Arr from Flights where "
            "Dep = 'PHL') where Arr = 'ATL';",
        ):
            assert inline_route_report(text, SCHEMAS).route == "direct", text

    def test_fallback_report_names_clause_and_span(self):
        from repro.isql import inline_route_report

        text = (
            "select * from Flights where Arr = 'ATL' and "
            "'X' in (select Arr from Flights);"
        )
        report = inline_route_report(text, SCHEMAS)
        assert report.route == "fallback"
        assert report.clause == "where"
        assert report.span is not None
        snippet = report.snippet(text)
        assert snippet == "'X' in (select Arr from Flights)"

    def test_select_list_span_points_at_the_item(self):
        from repro.isql import inline_route_report

        text = "select Arr, count(Dep) as N from Flights group by Dep;"
        report = inline_route_report(text, SCHEMAS)
        assert report.route == "fallback"
        assert report.clause == "select list"
        assert report.snippet(text) == "Arr"

    def test_report_unpacks_as_the_historical_pair(self):
        from repro.isql import inline_route_report

        route, reason, clause, span = inline_route_report(TRIP, SCHEMAS)
        assert route == "direct" and reason is None
        assert inline_route_report(TRIP, SCHEMAS)[0] == "direct"


class TestExplainWidenedFragment:
    def test_aggregate_query_explains_without_crashing(self):
        """1↦1 aggregation: the Fig.6 route carries it, §5.3 does not."""
        report = explain("select count(Arr) as N from Flights;", SCHEMAS)
        assert report.complete_to_complete
        assert report.relational_general is not None
        assert report.relational_optimized is None
        assert "Fig.6" in report.render()


class TestRunViaTranslation:
    def test_matches_the_engine(self, flights):
        db = Database({"Flights": flights})
        relational = run_via_translation(TRIP, db)

        session = ISQLSession()
        session.register("Flights", flights)
        assert relational == session.query(TRIP).relation

    def test_rejects_open_queries(self, flights):
        db = Database({"Flights": flights})
        with pytest.raises(TypingError, match="1↦1"):
            run_via_translation("select * from Flights choice of Dep;", db)

    @pytest.mark.parametrize(
        "text",
        [
            "select Arr from Flights where Dep = 'FRA';",
            "select certain Arr from Flights choice of Dep;",
            "select possible Arr from Flights where Arr != 'ATL' choice of Dep;",
            "select possible Dep from Flights choice of Dep, Arr;",
            "select certain Arr from Flights choice of Dep group worlds by Dep, Arr;",
            "select F1.Dep from Flights F1, Flights F2 "
            "where F1.Arr = F2.Arr and F1.Dep != F2.Dep;",
        ],
    )
    def test_agreement_across_fragment_queries(self, text):
        flights = paper_flights()
        db = Database({"Flights": flights})
        session = ISQLSession()
        session.register("Flights", flights)
        engine_answers = session.query(text).answers()
        if len(engine_answers) == 1:
            assert run_via_translation(text, db) == next(iter(engine_answers))
