"""Transactional sessions: atomic scripts, transaction(), savepoints.

Statement-level atomicity is structural (backends commit by swapping
immutable state references); this suite pins the *multi-statement*
layer built on top: ``execute``/``run_script`` with ``atomic=True``,
the :meth:`ISQLSession.transaction` context manager, and the
savepoint stack — including that rollback restores views and declared
keys, not just the possible-worlds state.
"""

import pytest

from repro.errors import EvaluationError, ReproError, SchemaError
from repro.isql.session import ISQLSession, Savepoint
from repro.relational import Relation

BACKENDS = ["explicit", "inline", "inline-translate"]


@pytest.fixture
def bookings():
    return Relation(("Ref", "City"), [(1, "BCN"), (2, "ATL"), (3, "FRA")])


def _session(backend, bookings):
    session = ISQLSession(backend=backend)
    session.register("Bookings", bookings)
    return session


def _refs(session):
    return session.query("select * from Bookings;").possible().project(("Ref",))


@pytest.mark.parametrize("backend", BACKENDS)
class TestAtomicScripts:
    def test_atomic_script_commits_on_success(self, backend, bookings):
        session = _session(backend, bookings)
        results = session.run_script(
            "insert into Bookings values (4, 'PAR');"
            "delete from Bookings where City = 'ATL';",
            atomic=True,
        )
        assert [r.applied for r in results] == [True, True]
        assert _refs(session) == Relation(("Ref",), [(1,), (3,), (4,)])

    def test_atomic_script_rolls_back_wholesale(self, backend, bookings):
        session = _session(backend, bookings)
        before = session.world_set
        with pytest.raises(ReproError):
            session.run_script(
                "insert into Bookings values (4, 'PAR');"
                "delete from Bookings where Nope = 1;",  # unknown column
                atomic=True,
            )
        assert session.world_set == before  # the insert is gone too

    def test_default_script_keeps_committed_prefix(self, backend, bookings):
        session = _session(backend, bookings)
        with pytest.raises(ReproError):
            session.run_script(
                "insert into Bookings values (4, 'PAR');"
                "select * from Nowhere;"
            )
        assert _refs(session) == Relation(("Ref",), [(1,), (2,), (3,), (4,)])

    def test_atomic_execute_rolls_back_views_too(self, backend, bookings):
        session = _session(backend, bookings)
        with pytest.raises(ReproError):
            session.execute(
                "create view Cities as select City from Bookings;"
                "select * from Nowhere;",
                atomic=True,
            )
        assert "Cities" not in session.views
        # The name is free again: re-creating it succeeds.
        session.execute("create view Cities as select City from Bookings;")


@pytest.mark.parametrize("backend", BACKENDS)
class TestTransactionBlocks:
    def test_commit_on_clean_exit(self, backend, bookings):
        session = _session(backend, bookings)
        with session.transaction():
            session.execute("insert into Bookings values (4, 'PAR');")
        assert _refs(session) == Relation(("Ref",), [(1,), (2,), (3,), (4,)])

    def test_rollback_restores_state_views_and_keys(self, backend, bookings):
        session = _session(backend, bookings)
        before = session.world_set
        with pytest.raises(RuntimeError):
            with session.transaction():
                session.execute("insert into Bookings values (4, 'PAR');")
                session.execute("create view Cities as select City from Bookings;")
                session.declare_key("Bookings", ("Ref",))
                raise RuntimeError("abort")
        assert session.world_set == before
        assert "Cities" not in session.views
        assert "Bookings" not in session.keys

    def test_nested_transactions_roll_back_independently(self, backend, bookings):
        session = _session(backend, bookings)
        with session.transaction():
            session.execute("insert into Bookings values (4, 'PAR');")
            with pytest.raises(RuntimeError):
                with session.transaction():
                    session.execute("delete from Bookings;")
                    raise RuntimeError("inner abort")
            # Outer work survives the inner rollback.
            assert _refs(session) == Relation(("Ref",), [(1,), (2,), (3,), (4,)])
        assert _refs(session) == Relation(("Ref",), [(1,), (2,), (3,), (4,)])

    def test_rolled_back_block_discards_its_savepoints(self, backend, bookings):
        session = _session(backend, bookings)
        outside = session.savepoint("outside")
        with pytest.raises(RuntimeError):
            with session.transaction():
                inside = session.savepoint("inside")
                raise RuntimeError("abort")
        with pytest.raises(EvaluationError):
            session.rollback_to(inside)
        session.rollback_to(outside)  # pre-existing savepoints survive


@pytest.mark.parametrize("backend", BACKENDS)
class TestSavepoints:
    def test_rollback_to_restores_and_is_repeatable(self, backend, bookings):
        session = _session(backend, bookings)
        mark = session.savepoint("clean")
        for _ in range(2):  # a savepoint survives its own rollback
            session.execute("insert into Bookings values (4, 'PAR');")
            session.rollback_to(mark)
            assert _refs(session) == Relation(("Ref",), [(1,), (2,), (3,)])

    def test_rollback_discards_later_savepoints(self, backend, bookings):
        session = _session(backend, bookings)
        first = session.savepoint("first")
        session.execute("insert into Bookings values (4, 'PAR');")
        second = session.savepoint("second")
        session.rollback_to(first)
        with pytest.raises(EvaluationError, match="unknown or released"):
            session.rollback_to(second)

    def test_release_keeps_work_but_invalidates_token(self, backend, bookings):
        session = _session(backend, bookings)
        mark = session.savepoint()
        session.execute("insert into Bookings values (4, 'PAR');")
        session.release(mark)
        assert _refs(session) == Relation(("Ref",), [(1,), (2,), (3,), (4,)])
        with pytest.raises(EvaluationError, match="unknown or released"):
            session.rollback_to(mark)

    def test_release_drops_later_savepoints_too(self, backend, bookings):
        session = _session(backend, bookings)
        first = session.savepoint("first")
        second = session.savepoint("second")
        session.release(first)
        with pytest.raises(EvaluationError):
            session.rollback_to(second)

    def test_foreign_savepoint_is_rejected(self, backend, bookings):
        session = _session(backend, bookings)
        other = ISQLSession(backend=backend)
        other.register("Bookings", bookings)
        foreign = other.savepoint("elsewhere")
        with pytest.raises(EvaluationError, match="unknown or released"):
            session.rollback_to(foreign)

    def test_savepoints_compare_by_identity(self, backend, bookings):
        session = _session(backend, bookings)
        a = session.savepoint("same-name")
        b = session.savepoint("same-name")
        assert a is not b and a != b
        session.rollback_to(b)
        session.rollback_to(a)  # still valid: b was after a

    def test_savepoint_restores_keys_and_views(self, backend, bookings):
        session = _session(backend, bookings)
        mark = session.savepoint()
        session.declare_key("Bookings", ("Ref",))
        session.execute("create view Cities as select City from Bookings;")
        session.rollback_to(mark)
        assert session.keys == {}
        assert session.views == {}


def test_savepoint_repr_names_itself(bookings):
    session = _session("inline", bookings)
    assert repr(session.savepoint("risky")) == "Savepoint('risky')"
    assert repr(session.savepoint()) == "Savepoint()"
    assert isinstance(session.savepoint(), Savepoint)


def test_register_conflict_after_rollback_is_gone(bookings):
    """Rolling back an assignment frees its relation name."""
    session = _session("inline", bookings)
    before = session.world_set
    with pytest.raises(RuntimeError):
        with session.transaction():
            session.execute("B <- select * from Bookings choice of City;")
            raise RuntimeError("abort")
    assert session.world_set == before
    session.execute("B <- select * from Bookings choice of City;")  # name free


def test_transaction_restores_across_world_splits(bookings):
    """Rollback across a world-count change (choice-of then back)."""
    for backend in BACKENDS:
        session = _session(backend, bookings)
        assert session.world_count() == 1
        with pytest.raises(RuntimeError):
            with session.transaction():
                session.execute("B <- select * from Bookings choice of City;")
                assert session.world_count() == 3
                raise RuntimeError("abort")
        assert session.world_count() == 1
