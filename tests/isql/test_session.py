"""Sessions: catalog management and statement orchestration."""

import pytest

from repro.errors import EvaluationError, SchemaError
from repro.isql import ISQLSession
from repro.relational import Relation


class TestCatalog:
    def test_register_and_names(self, flights):
        s = ISQLSession()
        s.register("Flights", flights)
        assert s.relation_names() == ("Flights",)
        assert s.world_count() == 1

    def test_register_duplicate_rejected(self, flights):
        s = ISQLSession()
        s.register("Flights", flights)
        with pytest.raises(SchemaError):
            s.register("Flights", flights)

    def test_view_name_clash_rejected(self, flights):
        s = ISQLSession()
        s.register("Flights", flights)
        s.execute("create view V as select * from Flights;")
        with pytest.raises(SchemaError):
            s.register("V", flights)
        with pytest.raises(SchemaError):
            s.execute("create view Flights as select * from Flights;")

    def test_assignment_name_clash_rejected(self, flights):
        s = ISQLSession()
        s.register("Flights", flights)
        with pytest.raises(SchemaError):
            s.execute("Flights <- select * from Flights;")


class TestExecution:
    def test_execute_returns_one_result_per_statement(self, flights):
        s = ISQLSession()
        s.register("Flights", flights)
        results = s.execute(
            "F <- select * from Flights choice of Dep;"
            "select certain Arr from F;"
            "delete from F where Arr = 'ATL';"
        )
        assert results[0] is None  # assignment
        assert results[1].relation.rows == {("ATL",)}
        assert results[2].applied

    def test_query_helper_requires_single_select(self, flights):
        s = ISQLSession()
        s.register("Flights", flights)
        with pytest.raises(EvaluationError):
            s.query("delete from Flights;")
        with pytest.raises(EvaluationError):
            s.query("select * from Flights; select * from Flights;")

    def test_open_query_result_exposes_answers(self, flights):
        s = ISQLSession()
        s.register("Flights", flights)
        result = s.query("select * from Flights choice of Dep;")
        with pytest.raises(EvaluationError, match="differs across worlds"):
            result.relation
        assert len(result.answers()) == 3

    def test_max_worlds_guard(self):
        s = ISQLSession(max_worlds=3)
        s.register(
            "R", Relation(("A", "B"), [(i, j) for i in range(3) for j in range(2)])
        )
        with pytest.raises(EvaluationError, match="limit"):
            s.execute("X <- select * from R repair by key A;")

    def test_assignment_with_world_split_persists(self, flights):
        s = ISQLSession()
        s.register("Flights", flights)
        s.execute("F <- select * from Flights choice of Dep;")
        assert s.world_count() == 3
        assert s.relation_names() == ("Flights", "F")

    def test_materialized_result_is_correlated(self):
        """Assignments allow correlated self-joins — the repair-based
        guess-and-check of Proposition 4.2 depends on this."""
        s = ISQLSession()
        s.register("R", Relation(("K", "V"), [(1, "a"), (1, "b")]))
        s.execute("Rep <- select * from R repair by key K;")
        result = s.query(
            "select possible X.V from Rep X, Rep Y where X.V != Y.V;"
        )
        # Within one world both references see the SAME repair, so no
        # pair with different V exists.
        assert result.relation.rows == set()
