"""Section 3, "Order of evaluation": the clause pipeline, pinned.

The skeleton select-from-where evaluates first; choice-of, repair-by-
key and group-worlds-by apply *after* the where-clause and *before* the
select-list projection — so a query may choose on an attribute it does
not output, and the where-clause filters before worlds are split.
"""

import pytest

from repro.isql import ISQLSession
from repro.relational import Relation


@pytest.fixture
def session(flights):
    s = ISQLSession()
    s.register("Flights", flights)
    return s


class TestChoiceAfterWhere:
    def test_where_filters_before_choice(self, session):
        """PHL's only flight goes to ATL; filtering Arr != 'ATL' first
        removes PHL entirely, so only two choice-worlds remain."""
        result = session.query(
            "select * from Flights where Arr != 'ATL' choice of Dep;"
        )
        assert result.world_count() == 2

    def test_choice_before_where_would_differ(self, session):
        """Splitting first (via a subquery) keeps the PHL world with an
        empty answer — three worlds, not two."""
        result = session.query(
            "select * from (select * from Flights choice of Dep) F "
            "where Arr != 'ATL';"
        )
        answers = result.answers()
        assert Relation(("Dep", "Arr"), []) in answers  # the emptied PHL world


class TestChoiceBeforeProjection:
    def test_choice_attribute_need_not_be_projected(self, session):
        """`select Arr … choice of Dep` — Dep is consumed by choice-of
        before the projection drops it."""
        result = session.query("select Arr from Flights choice of Dep;")
        assert result.world_count() == 2  # FRA/PAR collapse, PHL separate
        for answer in result.answers():
            assert answer.schema.attributes == ("Arr",)

    def test_repair_key_need_not_be_projected(self):
        s = ISQLSession()
        s.register("R", Relation(("K", "V"), [(1, "a"), (1, "b")]))
        result = s.query("select V from R repair by key K;")
        assert result.answers() == frozenset(
            {Relation(("V",), [("a",)]), Relation(("V",), [("b",)])}
        )


class TestGroupWorldsAfterRepair:
    def test_figure_1_clause_order(self):
        """choice-of → repair-by-key → group-worlds-by, per Figure 1."""
        s = ISQLSession()
        s.register(
            "R",
            Relation(("G", "K", "V"), [(1, 1, "a"), (1, 1, "b"), (2, 2, "c")]),
        )
        # choice of G splits by group; repair by key K then repairs each
        # world; certain per G-group intersects the repairs.
        result = s.query(
            "select certain V from R choice of G repair by key K "
            "group worlds by G;"
        )
        answers = result.answers()
        # G=1 group: repairs {a} and {b} intersect to ∅; G=2: {c}.
        assert Relation(("V",), []) in answers
        assert Relation(("V",), [("c",)]) in answers


class TestClosingLast:
    def test_certain_applies_to_projected_tuples(self, session):
        """The paper: 'if possible or certain are present we union,
        respectively intersect, the tuples in that projection'."""
        result = session.query(
            "select certain Arr from Flights choice of Dep;"
        )
        assert result.relation.rows == {("ATL",)}

    def test_possible_after_grouping_merges_within_groups(self, session):
        result = session.query(
            "select possible Arr from Flights choice of Dep, Arr "
            "group worlds by Dep;"
        )
        # Groups are per departure; union of its per-arrival worlds
        # recovers each departure's arrival set.
        assert result.answers() == frozenset(
            {
                Relation(("Arr",), [("ATL",), ("BCN",)]),
                Relation(("Arr",), [("ATL",)]),
            }
        )
