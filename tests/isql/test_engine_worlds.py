"""The I-SQL engine: world-splitting, grouping, and closing constructs."""

import pytest

from repro.errors import EvaluationError
from repro.isql import ISQLSession
from repro.relational import Relation


@pytest.fixture
def session(flights):
    s = ISQLSession()
    s.register("Flights", flights)
    return s


class TestChoiceOf:
    def test_splits_worlds(self, session):
        result = session.query("select * from Flights choice of Dep;")
        assert result.world_count() == 3
        assert len(result.answers()) == 3

    def test_choice_then_certain_closes(self, session):
        result = session.query("select certain Arr from Flights choice of Dep;")
        assert result.relation.rows == {("ATL",)}
        assert result.world_count() == 1  # uniform answer + same base

    def test_choice_then_possible(self, session):
        result = session.query(
            "select possible Arr from Flights where Arr != 'ATL' choice of Dep;"
        )
        assert result.relation.rows == {("BCN",)}

    def test_nested_choice_in_from_subquery(self, session):
        result = session.query(
            "select Arr from (select * from Flights choice of Dep) F;"
        )
        # FRA and PAR worlds project to the same {ATL, BCN} answer and
        # collapse under set semantics; PHL keeps {ATL}.
        assert result.world_count() == 2
        assert result.answers() == frozenset(
            {
                Relation(("Arr",), [("ATL",), ("BCN",)]),
                Relation(("Arr",), [("ATL",)]),
            }
        )


class TestRepairByKey:
    def test_repair_splits(self):
        s = ISQLSession()
        s.register(
            "Census",
            Relation(
                ("SSN", "Name"),
                [(1, "Ann"), (1, "Anna"), (2, "Bob")],
            ),
        )
        result = s.query("select * from Census repair by key SSN;")
        assert result.world_count() == 2
        for answer in result.answers():
            ssns = [row[0] for row in answer.rows]
            assert len(ssns) == len(set(ssns))

    def test_assignment_materializes_repairs(self):
        s = ISQLSession()
        s.register("R", Relation(("A", "B"), [(1, "x"), (1, "y")]))
        s.execute("Rep <- select * from R repair by key A;")
        assert s.world_count() == 2


class TestGroupWorldsBy:
    def test_attribute_grouping(self, session):
        result = session.query(
            "select certain Arr from Flights choice of Dep group worlds by Dep;"
        )
        # Each Dep-world is its own group, so 'certain' is per world.
        assert result.answers() == frozenset(
            {
                Relation(("Arr",), [("BCN",), ("ATL",)]),
                Relation(("Arr",), [("ATL",)]),
            }
        )

    def test_subquery_grouping(self):
        s = ISQLSession()
        s.register("R", Relation(("A", "B"), [(1, "x"), (1, "y"), (2, "z")]))
        s.execute("C <- select * from R choice of A, B;")
        result = s.query(
            "select certain B from C group worlds by (select A from C);"
        )
        # Worlds with the same A-projection group; (1,x) vs (1,y) intersect to ∅.
        answers = result.answers()
        assert Relation(("B",), [("z",)]) in answers
        assert Relation(("B",), []) in answers

    def test_group_worlds_by_requires_closing(self, session):
        with pytest.raises(EvaluationError, match="possible or .*certain"):
            session.query(
                "select Arr from Flights choice of Dep group worlds by Dep;"
            )

    def test_subquery_grouping_must_be_world_local(self, session):
        with pytest.raises(EvaluationError, match="world"):
            session.query(
                "select certain Arr from Flights choice of Dep "
                "group worlds by (select possible Arr from Flights);"
            )


class TestClosingAcrossWorlds:
    def test_possible_unions_across_worlds(self, session):
        session.execute("F <- select * from Flights choice of Dep;")
        result = session.query("select possible Arr from F;")
        assert result.relation.rows == {("ATL",), ("BCN",)}

    def test_certain_intersects_across_worlds(self, session):
        session.execute("F <- select * from Flights choice of Dep;")
        result = session.query("select certain Arr from F;")
        assert result.relation.rows == {("ATL",)}
        # Example 3.1: the three worlds persist, each extended.
        assert result.world_count() == 3

    def test_hoisted_splitting_subquery_in_where(self):
        s = ISQLSession()
        s.register("L", Relation(("P", "Q"), [("a", 1), ("b", 2), ("c", 1)]))
        result = s.query(
            "select possible P from L where Q not in "
            "(select * from L choice of Q);"
        )
        # choice of Q makes one world per quantity; 'not in' keeps the others.
        assert result.relation.rows == {("a",), ("b",), ("c",)}

    def test_correlated_subquery_may_not_split(self):
        s = ISQLSession()
        s.register("L", Relation(("P", "Q"), [("a", 1)]))
        with pytest.raises(EvaluationError):
            s.query(
                "select P from L where Q in "
                "(select * from L X where X.P = L.P choice of Q);"
            )
