"""Engine internals: the resolver, star projection, value evaluation."""

import pytest

from repro.errors import EvaluationError
from repro.isql import ISQLSession, ast
from repro.isql.engine import _Resolver, _arith, _compare, _unqualified
from repro.relational import Relation


class TestResolver:
    def test_qualified_resolution(self):
        resolver = _Resolver(("F.Dep", "F.Arr"))
        assert resolver.position(ast.Column("F", "Dep")) == 0
        assert resolver.position(ast.Column("G", "Dep")) is None

    def test_unqualified_suffix_match(self):
        resolver = _Resolver(("F.Dep", "F.Arr"))
        assert resolver.position(ast.Column(None, "Arr")) == 1

    def test_ambiguity_raises(self):
        resolver = _Resolver(("F.Dep", "G.Dep"))
        with pytest.raises(EvaluationError, match="ambiguous"):
            resolver.position(ast.Column(None, "Dep"))

    def test_require_resolves_attr_lists(self):
        resolver = _Resolver(("F.Dep", "F.Arr"))
        assert resolver.require("F.Arr") == 1
        assert resolver.require("Dep") == 0
        with pytest.raises(EvaluationError, match="unknown attribute"):
            resolver.require("Nope")

    def test_unqualified_helper(self):
        assert _unqualified("F.Dep") == "Dep"
        assert _unqualified("Dep") == "Dep"


class TestStarProjection:
    def test_star_strips_qualifiers(self, flights):
        session = ISQLSession()
        session.register("Flights", flights)
        result = session.query("select * from Flights F;")
        assert result.relation.schema.attributes == ("Dep", "Arr")

    def test_star_keeps_qualifiers_on_collision(self, flights):
        session = ISQLSession()
        session.register("Flights", flights)
        result = session.query(
            "select * from Flights F1, Flights F2 where F1.Dep = F2.Dep;"
        )
        assert set(result.relation.schema.attributes) == {
            "F1.Dep",
            "F1.Arr",
            "F2.Dep",
            "F2.Arr",
        }


class TestValueEvaluation:
    def test_comparison_operators(self):
        assert _compare("=", 1, 1) and _compare("!=", 1, 2)
        assert _compare("<", 1, 2) and _compare("<=", 2, 2)
        assert _compare(">", 3, 2) and _compare(">=", 2, 2)

    def test_mixed_type_comparison_is_false(self):
        assert not _compare("<", 1, "x")

    def test_unknown_comparison_rejected(self):
        with pytest.raises(EvaluationError):
            _compare("~", 1, 1)

    def test_arithmetic(self):
        assert _arith("+", 2, 3) == 5
        assert _arith("-", 2, 3) == -1
        assert _arith("*", 2, 3) == 6
        assert _arith("/", 3, 2) == 1.5

    def test_arithmetic_over_none_rejected(self):
        with pytest.raises(EvaluationError, match="empty"):
            _arith("+", None, 1)


class TestScalarSubqueryErrors:
    def test_multi_row_scalar_rejected(self):
        session = ISQLSession()
        session.register("R", Relation(("A", "B"), [(1, 1), (2, 2)]))
        with pytest.raises(EvaluationError, match="more than one row"):
            session.query(
                "select A from R where (select B from R X) = 1;"
            )

    def test_multi_column_scalar_rejected(self):
        session = ISQLSession()
        session.register("R", Relation(("A", "B"), [(1, 1)]))
        with pytest.raises(EvaluationError, match="one column"):
            session.query(
                "select A from R where (select X.A, X.B from R X) = 1;"
            )

    def test_empty_scalar_subquery_defaults_to_zero(self):
        session = ISQLSession()
        session.register("R", Relation(("A",), [(0,)]))
        result = session.query(
            "select A from R where (select X.A from R X where X.A = 9) = 0;"
        )
        assert result.relation.rows == {(0,)}

    def test_in_by_needle_name_on_multi_column_subquery(self):
        """The paper's `Quantity not in (select * …)` pattern: the
        membership column is picked by the needle's name."""
        session = ISQLSession()
        session.register("R", Relation(("A", "B"), [(1, 7)]))
        result = session.query(
            "select A from R where B in (select X.A, X.B from R X);"
        )
        assert result.relation.rows == {(1,)}  # 7 ∈ π_B

    def test_in_subquery_without_matching_column_rejected(self):
        session = ISQLSession()
        session.register("R", Relation(("A", "B"), [(1, 1)]))
        with pytest.raises(EvaluationError, match="one column"):
            session.query(
                "select A from R where A + 1 in (select X.A, X.B from R X);"
            )
