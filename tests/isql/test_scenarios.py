"""The four Section 2 application scenarios, end to end in I-SQL."""

import pytest

from repro.datagen import census, lineitem, paper_company, paper_flights
from repro.isql import ISQLSession
from repro.relational import Relation


class TestCompanyAcquisition:
    """Business decision support: which acquisition guarantees 'Web'?"""

    @pytest.fixture
    def session(self):
        s = ISQLSession()
        company_emp, emp_skills = paper_company()
        s.register("Company_Emp", company_emp)
        s.register("Emp_Skills", emp_skills)
        return s

    def test_full_script(self, session):
        session.execute("U <- select * from Company_Emp choice of CID;")
        assert session.world_count() == 2

        session.execute(
            """V <- select R1.CID, R1.EID
               from Company_Emp R1, (select * from U choice of EID) R2
               where R1.CID = R2.CID and R1.EID != R2.EID;"""
        )
        assert session.world_count() == 5

        session.execute(
            """W <- select certain CID, Skill
               from V, Emp_Skills
               where V.EID = Emp_Skills.EID
               group worlds by (select CID from V);"""
        )
        w_answers = {w["W"] for w in session.world_set.worlds}
        assert w_answers == {
            Relation(("CID", "Skill"), [("ACME", "Web")]),
            Relation(("CID", "Skill"), [("HAL", "Java")]),
        }

        result = session.query(
            "select possible CID from W where Skill = 'Web';"
        )
        assert result.relation.rows == {("ACME",)}


class TestTripPlanning:
    def test_certain_common_destination(self):
        s = ISQLSession()
        s.register("Flights", paper_flights())
        s.register("Hometowns", Relation(("Dep",), [("FRA",), ("PAR",), ("PHL",)]))
        s.execute(
            "create view HFlights as select * from Flights where Dep in Hometowns;"
        )
        result = s.query("select certain Arr from HFlights choice of Dep;")
        assert result.relation.rows == {("ATL",)}

    def test_matches_the_sql_division_formulation(self):
        s = ISQLSession()
        s.register("HFlights", paper_flights())
        isql = s.query("select certain Arr from HFlights choice of Dep;")
        sql = s.query(
            """select Arr from HFlights F1
               where not exists
                 (select * from HFlights F2
                  where not exists
                    (select * from HFlights F3
                     where F3.Dep = F2.Dep and F3.Arr = F1.Arr));"""
        )
        assert isql.relation == sql.relation


class TestTpchWhatIf:
    def test_year_quantity_worlds_and_threshold(self):
        s = ISQLSession()
        items = lineitem(
            years=(2004, 2005), n_products=6, n_quantities=3, rows_per_year=15, seed=3
        )
        s.register("Lineitem", items)
        s.execute(
            """create view YearQuantity as
               select A.Year, sum(A.Price) as Revenue
               from (select * from Lineitem choice of Year) as A
               where Quantity not in
                 (select * from Lineitem choice of Quantity)
               group by A.Year;"""
        )
        result = s.query(
            """select possible Year from YearQuantity as Y
               where (select sum(Price) from Lineitem
                      where Lineitem.Year = Y.Year)
                     - Y.Revenue > 1000;"""
        )
        # Shape check: some (year) pairs lose more than the threshold.
        years = {row[0] for row in result.relation.rows}
        assert years <= {2004, 2005} and years

    def test_threshold_monotonicity(self):
        """Raising the threshold can only shrink the answer."""
        s = ISQLSession()
        s.register(
            "Lineitem",
            lineitem(years=(2004, 2005), n_quantities=3, rows_per_year=15, seed=5),
        )
        s.execute(
            """create view YearQuantity as
               select A.Year, sum(A.Price) as Revenue
               from (select * from Lineitem choice of Year) as A
               where Quantity not in
                 (select * from Lineitem choice of Quantity)
               group by A.Year;"""
        )
        low = s.query(
            """select possible Year from YearQuantity as Y
               where (select sum(Price) from Lineitem
                      where Lineitem.Year = Y.Year) - Y.Revenue > 100;"""
        ).relation
        high = s.query(
            """select possible Year from YearQuantity as Y
               where (select sum(Price) from Lineitem
                      where Lineitem.Year = Y.Year) - Y.Revenue > 100000;"""
        ).relation
        assert high.rows <= low.rows


class TestCensusRepair:
    def test_repairs_enumerate_consistent_relations(self):
        s = ISQLSession()
        dirty = census(5, duplicate_rate=1.0, seed=2)
        s.register("Census", dirty)
        result = s.query("select * from Census repair by key SSN;")
        from repro.core import count_repairs

        assert result.world_count() == count_repairs(dirty, ("SSN",))
        for answer in result.answers():
            ssns = [row[0] for row in answer.rows]
            assert len(ssns) == len(set(ssns))

    def test_certain_tuples_of_all_repairs(self):
        s = ISQLSession()
        s.register(
            "Census",
            Relation(
                ("SSN", "Name", "POB", "POW"),
                [
                    (1, "Ann", "X", "Y"),
                    (1, "Ann", "Z", "Y"),
                    (2, "Bob", "X", "X"),
                ],
            ),
        )
        s.execute("Clean <- select * from Census repair by key SSN;")
        result = s.query("select certain SSN, Name from Clean;")
        # Both repairs contain (1, Ann) and (2, Bob) at the name level.
        assert result.relation.rows == {(1, "Ann"), (2, "Bob")}
