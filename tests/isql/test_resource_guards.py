"""Per-statement resource budgets on sessions: max_rows / max_seconds.

The guarantee under test: exceeding a budget raises the recoverable
:class:`~repro.errors.ResourceLimitError` *before* any state commit, so
the session afterwards sits exactly at its last commit and keeps
working — raise the budget (or drop it) and the same statement runs.
"""

import pytest

from repro.errors import EvaluationError, ResourceLimitError
from repro.isql.session import ISQLSession
from repro.relational import Relation

BACKENDS = ["explicit", "inline", "inline-translate"]


@pytest.fixture
def flights():
    return Relation(
        ("Dep", "Arr"),
        [("FRA", "BCN"), ("FRA", "ATL"), ("PAR", "ATL"), ("PAR", "BCN")],
    )


def _session(backend, flights, **limits):
    session = ISQLSession(backend=backend, **limits)
    session.register("Flights", flights)
    return session


@pytest.mark.parametrize("backend", BACKENDS)
def test_max_rows_aborts_the_statement(backend, flights):
    session = _session(backend, flights, max_rows=1)
    with pytest.raises(ResourceLimitError) as info:
        session.query("select certain Arr from Flights choice of Dep;")
    assert "max_rows=1" in str(info.value)


@pytest.mark.parametrize("backend", BACKENDS)
def test_max_seconds_zero_aborts_deterministically(backend, flights):
    session = _session(backend, flights, max_seconds=0.0)
    with pytest.raises(ResourceLimitError):
        session.query("select certain Arr from Flights choice of Dep;")


@pytest.mark.parametrize("backend", BACKENDS)
def test_limit_error_leaves_state_at_last_commit(backend, flights):
    session = _session(backend, flights)
    session.execute("H <- select * from Flights choice of Dep;")
    before = session.world_set
    session.max_rows = 1
    with pytest.raises(ResourceLimitError):
        session.execute("delete from H where Arr = 'ATL';")
    assert session.world_set == before


@pytest.mark.parametrize("backend", BACKENDS)
def test_session_recovers_once_the_budget_is_raised(backend, flights):
    session = _session(backend, flights, max_rows=1)
    query = "select certain Arr from Flights choice of Dep;"
    with pytest.raises(ResourceLimitError):
        session.query(query)
    session.max_rows = None  # budgets are read afresh per statement
    reference = ISQLSession(backend=backend)
    reference.register("Flights", flights)
    assert session.query(query).answers() == reference.query(query).answers()


@pytest.mark.parametrize("backend", BACKENDS)
def test_generous_budget_does_not_disturb_answers(backend, flights):
    guarded = _session(backend, flights, max_rows=2**62, max_seconds=1e9)
    plain = _session(backend, flights)
    query = "select possible Dep, Arr from Flights choice of Dep;"
    assert guarded.query(query).answers() == plain.query(query).answers()


def test_budget_is_per_statement_not_per_script(flights):
    """Each statement gets a fresh budget: a script whose statements each
    fit under max_rows runs even though their sum exceeds it."""
    session = _session("inline", flights, max_rows=200)
    session.run_script(
        "insert into Flights values ('LIS', 'FRA');"
        "insert into Flights values ('LIS', 'BCN');"
        "delete from Flights where Dep = 'LIS';"
    )
    assert session.query("select * from Flights;").possible() == flights


def test_limit_inside_atomic_script_rolls_back_wholesale(flights):
    session = _session("inline", flights)
    before = session.world_set
    script = (
        "insert into Flights values ('LIS', 'FRA');"
        "H <- select * from Flights choice of Dep;"
    )
    session.max_rows = 2  # the insert fits; the choice-of split cannot
    with pytest.raises(ResourceLimitError):
        session.run_script(script, atomic=True)
    assert session.world_set == before
    session.max_rows = None
    session.run_script(script, atomic=True)  # recovered, replays fine


def test_explicit_world_splitting_is_budgeted(flights):
    """choice-of on the explicit engine checkpoints per produced world,
    so budgets interrupt the world expansion itself."""
    session = _session("explicit", flights, max_rows=3)
    with pytest.raises(ResourceLimitError) as info:
        session.execute("H <- select * from Flights choice of Dep;")
    assert "choice_split" in str(info.value) or "cumulative" in str(info.value)


def test_resource_limit_is_catchable_as_evaluation_error(flights):
    session = _session("inline", flights, max_rows=1)
    with pytest.raises(EvaluationError):
        session.query("select certain Arr from Flights choice of Dep;")
