"""The I-SQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.isql import tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestTokens:
    def test_keywords_are_case_insensitive(self):
        assert kinds("SELECT Possible froM") == [
            ("keyword", "select"),
            ("keyword", "possible"),
            ("keyword", "from"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("Company_Emp") == [("ident", "Company_Emp")]

    def test_numbers(self):
        assert kinds("42 3.14") == [("number", "42"), ("number", "3.14")]

    def test_number_followed_by_qualified_name(self):
        # "1.CID"-style positional qualifiers must not eat the dot.
        tokens = kinds("R1.CID")
        assert tokens == [("ident", "R1"), ("symbol", "."), ("ident", "CID")]

    def test_strings(self):
        assert kinds("'Web'") == [("string", "Web")]

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")

    def test_two_char_symbols(self):
        assert kinds("<= >= != <> <-") == [
            ("symbol", "<="),
            ("symbol", ">="),
            ("symbol", "!="),
            ("symbol", "!="),
            ("symbol", "<-"),
        ]

    def test_unicode_assignment_arrow(self):
        assert kinds("U ← select")[1] == ("symbol", "<-")

    def test_comments_skipped(self):
        assert kinds("select -- a comment\n *") == [
            ("keyword", "select"),
            ("symbol", "*"),
        ]

    def test_unknown_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("select @")

    def test_eof_token_terminates(self):
        tokens = tokenize("select")
        assert tokens[-1].kind == "eof"

    def test_positions_recorded(self):
        tokens = tokenize("select Arr")
        assert tokens[0].position == 0
        assert tokens[1].position == 7
