"""The I-SQL engine: SQL aggregation (outside the algebra, Section 3)."""

import pytest

from repro.errors import EvaluationError
from repro.isql import ISQLSession
from repro.relational import Relation


@pytest.fixture
def sales_session():
    s = ISQLSession()
    s.register(
        "Sales",
        Relation(
            ("Product", "Price", "Year"),
            [
                ("pen", 2, 2006),
                ("pad", 5, 2006),
                ("pen", 3, 2007),
                ("ink", 10, 2007),
            ],
        ),
    )
    return s


class TestAggregates:
    def test_sum_group_by(self, sales_session):
        result = sales_session.query(
            "select Year, sum(Price) as Revenue from Sales group by Year;"
        )
        assert result.relation.rows == {(2006, 7), (2007, 13)}

    def test_count_star_and_column(self, sales_session):
        result = sales_session.query(
            "select Year, count(*) as N, count(Product) as P from Sales group by Year;"
        )
        assert result.relation.rows == {(2006, 2, 2), (2007, 2, 2)}

    def test_count_distinct_values(self):
        s = ISQLSession()
        s.register("R", Relation(("A", "B"), [(1, "x"), (1, "y"), (2, "x")]))
        result = s.query("select count(A) as N from R;")
        assert result.relation.rows == {(2,)}

    def test_min_max_avg(self, sales_session):
        result = sales_session.query(
            "select min(Price) as Lo, max(Price) as Hi, avg(Price) as Mid from Sales;"
        )
        assert result.relation.rows == {(2, 10, 5.0)}

    def test_aggregate_without_group_by_is_global(self, sales_session):
        result = sales_session.query("select sum(Price) as S from Sales;")
        assert result.relation.rows == {(20,)}

    def test_sum_over_empty_relation_is_zero(self):
        s = ISQLSession()
        s.register("E", Relation(("X",), []))
        result = s.query("select sum(X) as S from E;")
        assert result.relation.rows == {(0,)}

    def test_arithmetic_over_aggregates(self, sales_session):
        result = sales_session.query(
            "select Year, sum(Price) * 2 as Double from Sales group by Year;"
        )
        assert (2006, 14) in result.relation

    def test_aggregate_in_where_rejected(self, sales_session):
        with pytest.raises(EvaluationError, match="select list"):
            sales_session.query("select Year from Sales where sum(Price) > 1;")

    def test_bad_star_aggregate(self, sales_session):
        with pytest.raises(EvaluationError):
            sales_session.query("select sum(*) from Sales;")


class TestAggregatesAcrossWorlds:
    def test_per_world_revenue(self, sales_session):
        """Aggregation happens inside each world independently."""
        sales_session.execute("Y <- select * from Sales choice of Year;")
        result = sales_session.query("select sum(Price) as Revenue from Y;")
        assert result.answers() == frozenset(
            {Relation(("Revenue",), [(7,)]), Relation(("Revenue",), [(13,)])}
        )

    def test_year_quantity_pattern(self):
        """The Section 2 YearQuantity view: choice in from + hoisted
        choice in where + group-by aggregation."""
        s = ISQLSession()
        s.register(
            "Lineitem",
            Relation(
                ("Product", "Quantity", "Price", "Year"),
                [
                    ("a", 100, 10, 2006),
                    ("b", 200, 20, 2006),
                    ("a", 100, 30, 2007),
                    ("b", 200, 5, 2007),
                ],
            ),
        )
        s.execute(
            """YQ <- select A.Year, sum(A.Price) as Revenue
               from (select * from Lineitem choice of Year) as A
               where Quantity not in
                 (select * from Lineitem choice of Quantity)
               group by A.Year;"""
        )
        # 2 year-choices × 2 quantity-choices = 4 worlds.
        assert s.world_count() == 4
        revenues = {
            tuple(sorted(w["YQ"].rows)) for w in s.world_set.worlds
        }
        # Year 2006 without quantity 100 → only product b: 20, etc.
        assert ((2006, 20),) in revenues
        assert ((2006, 10),) in revenues
        assert ((2007, 5),) in revenues
        assert ((2007, 30),) in revenues

    def test_correlated_scalar_subquery(self):
        s = ISQLSession()
        s.register(
            "Lineitem",
            Relation(
                ("Product", "Quantity", "Price", "Year"),
                [("a", 100, 10, 2006), ("b", 200, 90, 2006), ("a", 100, 50, 2007)],
            ),
        )
        s.execute(
            """YQ <- select A.Year, sum(A.Price) as Revenue
               from (select * from Lineitem choice of Year) as A
               where Quantity not in
                 (select * from Lineitem choice of Quantity)
               group by A.Year;"""
        )
        result = s.query(
            """select possible Year from YQ as Y
               where (select sum(Price) from Lineitem
                      where Lineitem.Year = Y.Year)
                     - Y.Revenue > 50;"""
        )
        # 2006 loses 90 when quantity 200 is missing (100 - 10 = 90 > 50).
        assert result.relation.rows == {(2006,)}
