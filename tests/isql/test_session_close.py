"""Session resource hygiene: close() releases caches, keeps state.

Long-lived processes run many sessions; the row intern pool and the
per-relation caches (hash indexes, cached hashes, columnar twins) must
be clearable without invalidating the session. ``ISQLSession`` is also
a context manager closing on exit.
"""

import pytest

from repro import ISQLSession
from repro.relational import Relation, as_columnar
from repro.relational import relation as relation_module


@pytest.fixture
def flights():
    return Relation(("Dep", "Arr"), [("FRA", "BCN"), ("FRA", "ATL"), ("PAR", "ATL")])


@pytest.mark.parametrize("backend", ["explicit", "inline"])
def test_close_clears_caches_and_session_stays_usable(backend, flights):
    session = ISQLSession(backend=backend)
    session.register("Flights", flights)
    first = session.query(
        "select certain Arr from Flights choice of Dep;"
    ).relation
    session.close()
    # The intern pool is empty and rebuilt lazily.
    assert relation_module._INTERNED == {}
    # The session still answers queries identically after closing.
    again = session.query(
        "select certain Arr from Flights choice of Dep;"
    ).relation
    assert again == first
    session.close()  # idempotent


def test_close_drops_relation_level_caches(flights):
    session = ISQLSession(backend="inline")
    session.register("Flights", flights)
    session.query("select possible Arr from Flights choice of Dep;")
    # Warm the caches the hot path builds on the registered relation.
    flights._index(flights.schema.indices(("Dep",)))
    as_columnar(flights)
    hash(flights)
    assert flights._indexes and flights._columnar is not None
    assert flights._hash is not None
    session.close()
    assert flights._indexes == {}
    assert flights._columnar is None
    assert flights._hash is None


def test_session_context_manager_closes(flights):
    with ISQLSession(backend="inline") as session:
        session.register("Flights", flights)
        intern_row = relation_module.intern_row
        intern_row(("warm", "pool"))
        assert relation_module._INTERNED
    assert relation_module._INTERNED == {}


def test_clear_intern_pool_is_correctness_neutral():
    row = relation_module.intern_row((1, "a"))
    relation_module.clear_intern_pool()
    again = relation_module.intern_row((1, "a"))
    assert again == row  # equal content, possibly a fresh object


def test_close_after_mid_script_error(flights):
    """A failed script must not wedge close(): the session closes
    cleanly from whatever state the error left behind."""
    for backend in ("explicit", "inline"):
        session = ISQLSession(backend=backend)
        session.register("Flights", flights)
        with pytest.raises(Exception):
            session.run_script(
                "insert into Flights values ('LIS', 'FRA');"
                "delete from Flights where Nope = 1;"
            )
        session.close()
        # Still usable, and the committed prefix survived the close.
        rows = session.query("select * from Flights;").possible()
        assert ("LIS", "FRA") in rows.rows
        session.close()  # and still idempotent


def test_close_drops_the_savepoint_stack(flights):
    session = ISQLSession(backend="inline")
    session.register("Flights", flights)
    mark = session.savepoint("pre-close")
    session.close()
    assert session._savepoints == []
    with pytest.raises(Exception, match="unknown or released"):
        session.rollback_to(mark)
    # New savepoints work after close.
    again = session.savepoint()
    session.rollback_to(again)


def test_context_manager_closes_even_on_script_error(flights):
    with pytest.raises(Exception):
        with ISQLSession(backend="inline") as session:
            session.register("Flights", flights)
            session.savepoint("inside")
            session.run_script("delete from Flights where Nope = 1;")
    assert session._savepoints == []
    assert relation_module._INTERNED == {}
