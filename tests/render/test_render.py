"""ASCII rendering of relations, world-sets, representations, plans."""

from repro.core import cert, choice_of, poss_group, product, project, rel
from repro.inline import InlinedRepresentation
from repro.relational import Database, Relation
from repro.render import (
    render_database,
    render_plan,
    render_ra_plan,
    render_relation,
    render_representation,
    render_world_set,
)
from repro.worlds import World, WorldSet


class TestRelationRendering:
    def test_header_and_rows(self):
        text = render_relation(Relation(("Dep", "Arr"), [("FRA", "BCN")]), "Flights")
        assert "Flights" in text and "Dep" in text and "'FRA'" in text

    def test_empty_relation(self):
        text = render_relation(Relation(("A",), []))
        assert "(empty)" in text

    def test_nullary_relation(self):
        assert "⟨⟩" in render_relation(Relation.unit())
        assert "∅" in render_relation(Relation((), []))

    def test_deterministic_order(self):
        relation = Relation(("A",), [(3,), (1,), (2,)])
        assert render_relation(relation) == render_relation(relation)
        lines = render_relation(relation).splitlines()
        assert lines[-3:] == ["1", "2", "3"]


class TestCompositeRendering:
    def test_database(self):
        db = Database({"R": Relation(("A",), [(1,)])})
        assert "R" in render_database(db, title="world 1")

    def test_world_set_lists_every_world(self):
        ws = WorldSet(
            [
                World.of({"R": Relation(("A",), [(1,)])}),
                World.of({"R": Relation(("A",), [(2,)])}),
            ]
        )
        text = render_world_set(ws, title="Figure 2 (b)")
        assert text.count("world") >= 2 and "2 worlds" in text

    def test_representation_includes_world_table(self):
        rep = InlinedRepresentation(
            {"R": Relation(("A", "$V"), [(1, 1)])},
            Relation(("$V",), [(1,)]),
            ("$V",),
        )
        text = render_representation(rep, title="Figure 4")
        assert "Rᵀ" in text and "W" in text


class TestPlanRendering:
    def test_wsa_plan_tree(self):
        query = cert(
            project(
                "City",
                poss_group(("Dep",), ("Dep", "City"), choice_of("Dep", rel("HF"))),
            )
        )
        text = render_plan(query, title="q1")
        lines = text.splitlines()
        assert lines[0] == "q1"
        assert lines[1] == "cert"
        assert any("pγ" in line for line in lines)
        assert any("χ[Dep]" in line for line in lines)

    def test_binary_nodes_branch(self):
        query = product(rel("A"), rel("B"))
        text = render_plan(query)
        assert "├─" in text and "└─" in text

    def test_ra_plan_tree(self):
        from repro.relational import Divide, Project, Table

        expr = Divide(
            Project(("Arr", "Dep"), Table("HF")), Project(("Dep",), Table("HF"))
        )
        text = render_ra_plan(expr, title="Example 5.8")
        assert "÷" in text and "HF" in text
