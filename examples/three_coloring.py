"""Proposition 4.2: guess-and-check with repair-by-key is NP-hard.

Encodes graph 3-colorability as a two-statement I-SQL/WSA program:
guess a coloring with `repair by key VID`, materialize it, then check
for monochromatic edges with an ordinary (correlated) query closed by
`possible`. The number of repair worlds is |colors|^|vertices|.

Run:  python examples/three_coloring.py
"""

from repro.core.np_hard import (
    THREE_COLORS,
    brute_force_colorable,
    coloring_candidates,
    edge_relation,
    is_colorable,
)
from repro.core import count_repairs
from repro.datagen import random_graph


GRAPHS = {
    "triangle": (["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")]),
    "K4": (
        ["a", "b", "c", "d"],
        [("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"), ("c", "d")],
    ),
    "odd cycle C5": (
        [f"v{i}" for i in range(5)],
        [(f"v{i}", f"v{(i + 1) % 5}") for i in range(5)],
    ),
    "random(7, p=0.5)": random_graph(7, 0.5, seed=13),
}


def main() -> None:
    print(f"{'graph':18s} {'worlds':>8s} {'WSA says':>9s} {'brute force':>12s}")
    for name, (vertices, edges) in GRAPHS.items():
        worlds = count_repairs(coloring_candidates(vertices), ("VID",))
        by_wsa = is_colorable(vertices, edges)
        by_force = brute_force_colorable(vertices, edges, THREE_COLORS)
        assert by_wsa == by_force
        print(f"{name:18s} {worlds:>8d} {str(by_wsa):>9s} {str(by_force):>12s}")

    print("\nThe guess relation for the triangle (Cand = V × Colors):")
    cand = coloring_candidates(["a", "b", "c"])
    print(f"  {len(cand)} candidate rows → {count_repairs(cand, ('VID',))} "
          "repair worlds (3^3)")
    print("Edge relation is symmetric:",
          sorted(edge_relation([("a", "b")]).rows))


if __name__ == "__main__":
    main()
