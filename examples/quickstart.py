"""Quickstart: three ways to ask the same question about uncertain data.

The trip-planning query of Section 2: a group of people, one per
departure city, want a common destination reachable by a direct flight.
"Suppose the departure is any one of the cities" (choice-of), "which
arrivals are then guaranteed?" (certain).

Every I-SQL statement also prints the *route* the inline backend takes:
``direct`` means it compiles to a flat plan over the inlined
representation (worlds never enumerated), ``fallback`` means it would
delegate to the explicit per-world engine — see
docs/isql-reference.md for the construct-by-construct table.

Run:  python examples/quickstart.py
"""

from repro import (
    ISQLSession,
    answer,
    cert,
    choice_of,
    conservative_ra_query,
    optimized_ra_query,
    project,
    rel,
)
from repro.datagen import paper_flights
from repro.isql import inline_route
from repro.relational import Database
from repro.render import render_relation
from repro.worlds import World, WorldSet

SCHEMAS = {"Flights": ("Dep", "Arr")}

STATEMENTS = (
    "select certain Arr from Flights choice of Dep;",
    "delete from Flights where Dep in "
    "(select Dep from Flights where Arr = 'BCN');",
    "select possible Dep from Flights;",
)


def main() -> None:
    flights = paper_flights()
    print(render_relation(flights, title="Flights (Figure 2 a)"))
    print()

    # 1. I-SQL: the language of the paper. The backend switch decides
    #    how evaluation happens — "explicit" enumerates the worlds,
    #    "inline" runs on the flat inlined representation (Section 5)
    #    and never materializes a world. Same answers either way.
    for backend in ("explicit", "inline"):
        session = ISQLSession(backend=backend)
        session.register("Flights", flights)
        for statement in STATEMENTS:
            route = inline_route(statement, SCHEMAS)
            result = session.execute(statement)[0]
            shown = (
                result.relation.sorted_rows()
                if hasattr(result, "relation")
                else result
            )
            print(f"I-SQL ({backend:8s}) [route={route:8s}]:", shown)
        print()

    # 2. World-set algebra: the formal core (Figure 3 semantics).
    query = cert(project("Arr", choice_of("Dep", rel("Flights"))))
    world_set = WorldSet.single(World.of({"Flights": flights}))
    print("Algebra:", answer(query, world_set).sorted_rows())

    # 3. Relational algebra: Theorem 5.7 / Example 5.8 — the same query
    #    translated so *any* relational engine can run it.
    db = Database({"Flights": flights})
    compact = optimized_ra_query(query, db.schemas(), assume_nonempty=True)
    general = conservative_ra_query(query, db.schemas())
    print("RA (optimized §5.3):", compact.to_text())
    print("        evaluates to", compact.evaluate(db).sorted_rows())
    print("RA (general Fig. 6): query of size", general.size(), "— same answer:",
          general.evaluate(db).sorted_rows())


if __name__ == "__main__":
    main()
