"""Section 2, scenario 3: TPC-H-style what-if revenue analysis.

"Which years would lose more than a threshold of revenue if any one of
the sold package sizes were no longer available?" — the paper's
Q17-like query: choice-of over years × choice-of over quantities builds
the hypothetical worlds, per-world aggregation computes the revenue,
and `possible` collects the at-risk years.

Run:  python examples/tpch_what_if.py [threshold]
"""

import sys

from repro import ISQLSession
from repro.datagen import lineitem
from repro.isql import session_route
from repro.render import render_relation


def main(threshold: int = 50_000) -> None:
    items = lineitem(
        years=(2002, 2003, 2004, 2005),
        n_products=20,
        n_quantities=4,
        rows_per_year=60,
        seed=42,
    )
    session = ISQLSession()
    session.register("Lineitem", items)
    print(f"Lineitem: {len(items)} rows over 4 years, 4 package sizes\n")

    session.execute(
        """create view YearQuantity as
           select A.Year, sum(A.Price) as Revenue
           from (select * from Lineitem choice of Year) as A
           where Quantity not in
             (select * from Lineitem choice of Quantity)
           group by A.Year;"""
    )

    probe_text = "select possible Year, Revenue from YearQuantity;"
    probe = session.query(probe_text)
    print("Hypothetical (year, revenue-without-one-quantity) pairs "
          f"[inline route: {session_route(session, probe_text)}]:")
    print(render_relation(probe.relation))

    result_text = (
        f"""select possible Year from YearQuantity as Y
            where (select sum(Price) from Lineitem
                   where Lineitem.Year = Y.Year)
                  - Y.Revenue > {threshold};"""
    )
    result = session.query(result_text)
    print(f"\nYears with a possible revenue loss over {threshold} "
          f"[inline route: {session_route(session, result_text)}]:")
    print(render_relation(result.relation))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50_000)
