"""Explicit vs inline backends: same answers, very different costs.

The session below asks the trip-planning question over a Flights
relation with 1024 departure cities. `choice of Dep` means the
evaluation ranges over 2¹⁰ possible worlds:

* the explicit backend materializes each world and closes `certain`
  across them (Figure 3);
* the inline backend compiles the statement to a flat plan over the
  inlined representation ⟨Flightsᵀ, W⟩ and answers `certain` with one
  division — polynomial in the representation, worlds never built.

Run:  python examples/backend_comparison.py
"""

import time

from repro import ISQLSession
from repro.datagen import flights
from repro.isql import inline_route

QUERY = "select certain Arr from HFlights choice of Dep;"


def main() -> None:
    data = flights(1024, 64, 3, seed=1)
    print(f"HFlights: {len(data)} rows, 1024 departures -> 2^10 worlds\n")
    print("inline route:", inline_route(QUERY, {"HFlights": ("Dep", "Arr")}))

    timings = {}
    for backend in ("explicit", "inline"):
        session = ISQLSession(backend=backend)
        session.register("HFlights", data)
        start = time.perf_counter()
        answer = session.query(QUERY).relation
        timings[backend] = time.perf_counter() - start
        print(f"{backend:8s}: {timings[backend] * 1000:7.1f} ms ->",
              answer.sorted_rows())

    print(f"\ninline speedup: {timings['explicit'] / timings['inline']:.1f}x")

    # The inline session state really is flat tables plus a world table:
    session = ISQLSession(backend="inline")
    session.register("HFlights", data)
    session.execute("Trip <- select * from HFlights choice of Dep;")
    print("\ninline state after an assignment:", session.backend.representation)
    print("distinct worlds:", session.world_count(),
          "(decoded only because we asked)")


if __name__ == "__main__":
    main()
