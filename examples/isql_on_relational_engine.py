"""Section 8's vision: run I-SQL on top of a plain relational engine.

An I-SQL query of the algebra fragment is parsed, compiled to world-set
algebra, statically typed, and — when complete-to-complete — translated
to a relational algebra query that never materializes a world-set. The
report shows every layer; the final answers are cross-checked against
the world-set engine.

Run:  python examples/isql_on_relational_engine.py
"""

from repro.datagen import paper_flights
from repro.isql import ISQLSession, explain, run_via_translation
from repro.relational import Database
from repro.render import render_ra_plan

QUERIES = [
    "select certain Arr from Flights choice of Dep;",
    "select possible Arr from Flights where Arr != 'ATL' choice of Dep;",
    "select Arr from Flights where Dep = 'FRA';",
    "select * from Flights choice of Dep;",  # open: no relational form
]


def main() -> None:
    flights = paper_flights()
    schemas = {"Flights": ("Dep", "Arr")}
    db = Database({"Flights": flights})
    session = ISQLSession()
    session.register("Flights", flights)

    for text in QUERIES:
        print("=" * 64)
        print("I-SQL:", " ".join(text.split()))
        report = explain(text, schemas, assume_nonempty=True)
        print(report.render())
        if report.complete_to_complete:
            relational = run_via_translation(text, db)
            engine = session.query(text).relation
            assert relational == engine
            print("answer            :", relational.sorted_rows())
            print("\nrelational plan:")
            print(render_ra_plan(report.relational_optimized))
        print()


if __name__ == "__main__":
    main()
