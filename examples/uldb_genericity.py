"""Remark 4.6: genericity separates world-set algebra from TriQL.

U₁ and U₂ are two ULDBs (x-relations with alternatives, '?', lineage)
that represent exactly the same three possible worlds {1}, {2}, {}.
The TriQL query with a horizontal subquery

    select * from R where
    exists [select * from R r1, R r2 where r1.A <> r2.A];

answers differently on the two representations — TriQL reads the
packaging of alternatives, not the represented world-set. Every
world-set algebra query, by construction, cannot tell them apart
(Proposition 4.5).

Run:  python examples/uldb_genericity.py
"""

from repro.core import evaluate, poss, rel
from repro.render import render_world_set
from repro.uldb import remark_46_instances, remark_46_query


def main() -> None:
    u1, u2 = remark_46_instances()
    print("U1:", *u1.tuples, sep="\n  ")
    print("U2:", *u2.tuples, sep="\n  ")

    w1, w2 = u1.possible_worlds(), u2.possible_worlds()
    print(f"\nrep(U1) == rep(U2): {w1 == w2}  ({len(w1)} worlds)")

    a1 = remark_46_query(u1).possible_worlds()
    a2 = remark_46_query(u2).possible_worlds()
    print("\nTriQL horizontal query on U1 →", len(a1), "answer worlds")
    print(render_world_set(a1))
    print("\nTriQL horizontal query on U2 →", len(a2), "answer worlds")
    print(render_world_set(a2))
    print("\nTriQL generic on this pair:", a1 == a2)

    r1 = evaluate(poss(rel("R")), w1, name="Q")
    r2 = evaluate(poss(rel("R")), w2, name="Q")
    print("World-set algebra (poss(R)) agrees on both:", r1 == r2)


if __name__ == "__main__":
    main()
