"""Section 2, scenario 1: business decision support via hypothetical worlds.

"Suppose I buy exactly one company. Assume one (key) employee leaves.
Which skills do I then still acquire for certain — and which targets
guarantee the skill 'Web'?"

Reproduces the U → V → W → Result walk-through of Section 2, printing
the intermediate world-sets exactly as the paper's tables show them.

Run:  python examples/company_acquisition.py
"""

from repro import ISQLSession
from repro.datagen import paper_company
from repro.isql import session_route
from repro.render import render_relation, render_world_set


def main() -> None:
    company_emp, emp_skills = paper_company()
    print(render_relation(company_emp, title="Company_Emp"))
    print()
    print(render_relation(emp_skills, title="Emp_Skills"))

    session = ISQLSession()
    session.register("Company_Emp", company_emp)
    session.register("Emp_Skills", emp_skills)

    print("\n--- 'Suppose I choose to buy exactly one company.' ---")
    session.execute("U <- select * from Company_Emp choice of CID;")
    print(f"{session.world_count()} worlds (U1 = ACME, U2 = HAL)")

    print("\n--- 'Assume that one (key) employee leaves that company.' ---")
    session.execute(
        """V <- select R1.CID, R1.EID
           from Company_Emp R1, (select * from U choice of EID) R2
           where R1.CID = R2.CID and R1.EID != R2.EID;"""
    )
    print(f"{session.world_count()} worlds (V1.1, V1.2, V2.1, V2.2, V2.3):")
    for index, world in enumerate(session.world_set.sorted_worlds(), start=1):
        print(f"  V in world {index}: {world['V'].sorted_rows()}")

    print("\n--- 'Which skills can I obtain for certain?' ---")
    session.execute(
        """W <- select certain CID, Skill
           from V, Emp_Skills
           where V.EID = Emp_Skills.EID
           group worlds by (select CID from V);"""
    )
    for answer in sorted(
        {tuple(w["W"].sorted_rows()) for w in session.world_set.worlds}
    ):
        print(f"  W: {list(answer)}")

    print("\n--- 'Targets that guarantee the skill Web:' ---")
    query = "select possible CID from W where Skill = 'Web';"
    print(f"[inline route: {session_route(session, query)}]")
    result = session.query(query)
    print(render_relation(result.relation, title="Result"))


if __name__ == "__main__":
    main()
