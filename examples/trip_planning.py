"""Section 2, scenario 2 + Figure 2 + Examples 3.1/3.2/5.6/5.8.

Trip planning over possible worlds: choice-of splits the flights by
departure (Figure 2 b), DML deletes apply per world (Figure 2 c,
Example 3.2), `certain` closes the worlds (Figure 2 d, Example 3.1),
and the whole query translates to relational algebra (Examples 5.6
and 5.8).

Run:  python examples/trip_planning.py
"""

from repro import ISQLSession, cert, choice_of, project, rel
from repro.datagen import paper_flights
from repro.inline import (
    InlinedRepresentation,
    apply_general,
    optimized_ra_query,
)
from repro.isql import session_route
from repro.relational import Database
from repro.render import render_relation, render_representation, render_world_set


def main() -> None:
    flights = paper_flights()
    print(render_relation(flights, title="(a) Flights database"))

    session = ISQLSession()
    session.register("Flights", flights)

    print("\n(b) Creating worlds using choice-of on Dep")
    statement = "F <- select * from Flights choice of Dep;"
    print(f"  [inline route: {session_route(session, statement)}]")
    session.execute(statement)
    for index, world in enumerate(session.world_set.sorted_worlds(), start=1):
        print(f"  world {index}: F = {world['F'].sorted_rows()}")

    print("\n(d) select certain Arr from F;  (Example 3.1)")
    query = "select certain Arr from F;"
    print(f"  [inline route: {session_route(session, query)}]")
    result = session.query(query)
    print(f"  every world gains F' = {result.relation.sorted_rows()}"
          f" — still {result.world_count()} worlds")

    print("\n(c) delete from F where Arr = 'ATL';  (Example 3.2)")
    statement = "delete from F where Arr = 'ATL';"
    print(f"  [inline route: {session_route(session, statement)}]")
    session.execute(statement)
    for index, world in enumerate(session.world_set.sorted_worlds(), start=1):
        print(f"  world {index}: F = {world['F'].sorted_rows()}")

    print("\n--- Example 5.6: the general translation, step by step ---")
    db = Database({"HFlights": flights})
    rep = InlinedRepresentation.of_database(db)
    print("Step 1-2: inlined representation of the complete database:")
    print(render_representation(rep))
    query = cert(project("Arr", choice_of("Dep", rel("HFlights"))))
    out = apply_general(query, rep, name="F")
    print("\nAfter translation + evaluation (world ids are Dep values):")
    print(render_representation(out))

    print("\n--- Example 5.8: the optimized complete-to-complete form ---")
    compact = optimized_ra_query(query, db.schemas(), assume_nonempty=True)
    print("  ", compact.to_text())
    print("   =", compact.evaluate(db).sorted_rows())


if __name__ == "__main__":
    main()
