"""Section 2, scenario 4: consistent views of inconsistent data.

A Census relation violating the key SSN → (Name, POB, POW) is repaired
with `repair by key`: one world per consistent combination. The example
then shows data cleaning on top: the certain facts (true in every
repair) and the possible places of birth per person.

Run:  python examples/census_repair.py
"""

from repro import ISQLSession
from repro.core import count_repairs
from repro.datagen import census
from repro.isql import session_route
from repro.render import render_relation


def main() -> None:
    dirty = census(6, duplicate_rate=0.7, seed=11)
    print(render_relation(dirty, title="Census (dirty: SSN key violated)"))
    print(f"\nNumber of repairs: {count_repairs(dirty, ('SSN',))}")

    session = ISQLSession()
    session.register("Census", dirty)
    statement = "Clean <- select * from Census repair by key SSN;"
    print(f"[inline route: {session_route(session, statement)}]")
    session.execute(statement)
    print(f"Worlds after repair-by-key: {session.world_count()}")

    query = "select certain SSN, Name from Clean;"
    certain = session.query(query)
    print(f"\nCertain (SSN, Name) facts — true in every repair "
          f"[route: {session_route(session, query)}]:")
    print(render_relation(certain.relation))

    query = "select possible SSN, POB from Clean;"
    possible = session.query(query)
    print(f"\nPossible (SSN, POB) pairs — true in some repair "
          f"[route: {session_route(session, query)}]:")
    print(render_relation(possible.relation))

    # Deduplication check: every repair world satisfies the key.
    violations = session.query(
        "select possible C1.SSN from Clean C1, Clean C2 "
        "where C1.SSN = C2.SSN and C1.POB != C2.POB;"
    )
    print("\nKey violations inside any single repair world:",
          violations.relation.sorted_rows() or "none")


if __name__ == "__main__":
    main()
