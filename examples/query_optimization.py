"""Section 6 / Examples 6.1–6.2 / Figures 8–9: algebraic optimization.

Builds the paper's q1 and q2, replays the rewrite derivations rule by
rule, renders the before/after plan trees of Figures 8 and 9, and
measures the actual evaluation speed-up on generated data.

Run:  python examples/query_optimization.py
"""

import time

from repro.core import (
    answer,
    cert,
    choice_of,
    poss,
    poss_group,
    product,
    project,
    rel,
    select,
)
from repro.datagen import flights, hotels
from repro.optimizer import compare, optimize
from repro.relational import eq
from repro.render import render_plan
from repro.worlds import World, WorldSet

HF_ATTRS = ("Dep", "Arr")
HOTEL_ATTRS = ("Name", "City", "Price")
SCHEMAS = {"HFlights": HF_ATTRS, "Hotels": HOTEL_ATTRS}


def build_query(closing):
    inner = poss_group(
        ("Dep",),
        HF_ATTRS + HOTEL_ATTRS,
        choice_of(("Dep", "City"), product(rel("HFlights"), rel("Hotels"))),
    )
    return closing(project("City", select(eq("Arr", "City"), inner)))


def show(name, query, figure):
    optimized, trace = optimize(query, SCHEMAS)
    print(f"=== Example 6.{1 if name == 'q1' else 2}: {name} ===")
    print("derivation:")
    for step in trace:
        print(f"  {step.rule.equation:14s} {step.after.to_text()}")
    print()
    print(render_plan(query, title=f"Figure {figure} (a): {name}"))
    print()
    print(render_plan(optimized, title=f"Figure {figure} (b): {name}'"))
    print()
    return optimized


def timed(label, query, world_set):
    start = time.perf_counter()
    result = answer(query, world_set)
    elapsed = time.perf_counter() - start
    print(f"  {label:28s} {elapsed * 1000:8.1f} ms  → {len(result)} tuples")
    return elapsed


def main() -> None:
    q1 = build_query(cert)
    q2 = build_query(poss)
    q1_opt = show("q1", q1, 8)
    q2_opt = show("q2", q2, 9)

    world_set = WorldSet.single(
        World.of(
            {"HFlights": flights(8, 10, 3, seed=1), "Hotels": hotels(10, 2, seed=1)}
        )
    )
    print("=== measured evaluation (Figure 3 semantics) ===")
    t1 = timed("q1  (original)", q1, world_set)
    t1o = timed("q1' (rewritten)", q1_opt, world_set)
    t2 = timed("q2  (original)", q2, world_set)
    t2o = timed("q2' (rewritten)", q2_opt, world_set)
    print(f"\nspeed-ups: q1 {t1 / t1o:.1f}×, q2 {t2 / t2o:.1f}×")
    print(f"cost-model predictions: q1 {compare(q1, q1_opt):.0f}×, "
          f"q2 {compare(q2, q2_opt):.0f}×")


if __name__ == "__main__":
    main()
