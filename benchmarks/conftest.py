"""Shared benchmark fixtures and the scaling workloads."""

from __future__ import annotations

import pytest

from repro.datagen import flights, hotels


@pytest.fixture(scope="module")
def small_flights():
    return flights(6, 8, 3, seed=1)


@pytest.fixture(scope="module")
def medium_flights():
    return flights(15, 20, 5, seed=1)


@pytest.fixture(scope="module")
def large_flights():
    return flights(30, 40, 8, seed=1)


@pytest.fixture(scope="module")
def small_hotels():
    return hotels(8, 2, seed=1)
