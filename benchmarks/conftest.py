"""Shared benchmark fixtures, scaling workloads, and JSON reporting.

Benchmarks that compare execution backends append rows to
:data:`BACKEND_BENCH_RESULTS` (via :func:`record_backend_timing`); at
the end of the benchmark session the rows are written to
``BENCH_backends.json`` in the repository root, so the explicit-vs-
inline performance trajectory is machine-readable and tracked across
PRs.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import pytest

from repro.datagen import flights, hotels

#: Rows recorded by bench_backends.py during this pytest session.
BACKEND_BENCH_RESULTS: list[dict] = []


def record_backend_timing(
    scenario: str,
    backend: str,
    seconds: float | None,
    session_worlds: int | None,
    result_worlds: int | None,
    scenario_worlds: int,
    representation_size: int | None,
    answer_rows: int | None,
    phases: dict[str, float] | None = None,
    route: str | None = None,
    fallback_reason: str | None = None,
    kernel: str | None = None,
    repeats: int | None = None,
    infeasible: bool = False,
    guard_overhead: float | None = None,
    snapshot_overhead: float | None = None,
    plan_cache_speedup: float | None = None,
    cache_hit_rate: float | None = None,
) -> None:
    """Append one (scenario, backend) timing row for BENCH_backends.json.

    *session_worlds* is the state's world count after the script,
    *result_worlds* the final query result's, and *scenario_worlds* the
    size of the world space the query evaluation ranges over (a closed
    query may collapse back to one world at the very end).

    *seconds* is the median of *repeats* runs; *phases* breaks it down
    (compile / rewrite / execute / decode) for the median run. *route*
    and *fallback_reason* label how the inline backend executed the
    scenario's statements (``isql.explain.inline_route`` semantics), so
    near-1× explicit-vs-inline rows are explainable. *infeasible* rows
    (``seconds`` null) record that a backend cannot run the scenario at
    all — distinct from an unmeasured 0.

    *guard_overhead* (on ``inline-guarded`` rows) is the armed-budget
    wall-clock ratio against the paired unguarded run from the *same*
    process — measured back to back by the benchmark, so the committed
    ratio is machine-independent and ``check_regression.py`` can gate
    it absolutely (≤ 1.1×). *snapshot_overhead* (on ``inline-pool``
    rows) is the same idea for the service layer: pooled concurrent
    readers against the paired single-session replay of the same
    reads, gated absolutely at ≤ 1.2×.

    *plan_cache_speedup* (on ``inline-replay`` rows) is the paired
    same-process uncached/cached wall-clock ratio of the prepared-
    statement replay benchmark (the same statement re-executed under
    interleaved DML on another table); *cache_hit_rate* is the cached
    run's hits/(hits+misses). Both gate in ``check_regression.py``:
    the speedup must not collapse below 3× and a committed hit-rate
    must not silently disappear.
    """
    row: dict = {
        "scenario": scenario,
        "backend": backend,
        "seconds": round(seconds, 6) if seconds is not None else None,
        "session_worlds": session_worlds,
        "result_worlds": result_worlds,
        "scenario_worlds": scenario_worlds,
        "representation_size": representation_size,
        "answer_rows": answer_rows,
        # Provenance: ratios are only computed between rows from the
        # same interpreter on the same platform (best effort — a
        # hostname would identify machines exactly but does not
        # belong in a committed file).
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if infeasible:
        row["infeasible"] = True
    if phases is not None:
        row["phases"] = {name: round(value, 6) for name, value in sorted(phases.items())}
    if repeats is not None:
        row["repeats"] = repeats
    if route is not None:
        row["route"] = route
        row["fallback_reason"] = fallback_reason
    if guard_overhead is not None:
        row["guard_overhead"] = round(guard_overhead, 3)
    if snapshot_overhead is not None:
        row["snapshot_overhead"] = round(snapshot_overhead, 3)
    if plan_cache_speedup is not None:
        row["plan_cache_speedup"] = round(plan_cache_speedup, 3)
    if cache_hit_rate is not None:
        row["cache_hit_rate"] = round(cache_hit_rate, 4)
    # Every row states its kernel — explicitly null for backends that
    # have none (the explicit engine), so a missing key can only mean
    # a pre-registry row, not an unstated default.
    row["kernel"] = kernel
    BACKEND_BENCH_RESULTS.append(row)


def pytest_addoption(parser):
    parser.addoption(
        "--repeats",
        action="store",
        type=int,
        default=3,
        help="timing repetitions per (scenario, backend); the median is recorded",
    )


@pytest.fixture(scope="session")
def bench_repeats(request) -> int:
    """The ``--repeats`` knob: N timed runs, median-of-N recorded."""
    return max(int(request.config.getoption("--repeats")), 1)


def _ratio(numerator: dict | None, denominator: dict | None) -> float | None:
    """Seconds ratio of two rows when both are measured and comparable.

    Infeasible rows (``seconds`` null) never produce a ratio, and rows
    from different interpreters/platforms are not compared (a
    carried-over row may come from another machine).
    """
    if not numerator or not denominator:
        return None
    if numerator.get("seconds") is None or not denominator.get("seconds"):
        return None
    if (
        numerator.get("python") != denominator.get("python")
        or numerator.get("platform") != denominator.get("platform")
    ):
        return None
    return round(numerator["seconds"] / denominator["seconds"], 2)


def pytest_sessionfinish(session, exitstatus):
    if not BACKEND_BENCH_RESULTS:
        return
    path = Path(__file__).resolve().parent.parent / "BENCH_backends.json"
    # One row per (scenario, backend): several tests may time the same
    # pair in one session (keep the best of this run), and a partial run
    # must not wipe rows of scenarios it did not touch (carry those over
    # from the previous file). Fresh measurements always replace old
    # ones — never min across runs, or regressions would be masked.
    best: dict[tuple[str, str], dict] = {}
    if path.exists():
        try:
            for row in json.loads(path.read_text()).get("entries", []):
                best[(row["scenario"], row["backend"])] = row
        except (ValueError, KeyError):
            pass  # unreadable previous file: rebuild from this run
    measured: dict[tuple[str, str], dict] = {}
    for row in BACKEND_BENCH_RESULTS:
        key = (row["scenario"], row["backend"])
        previous = measured.get(key)
        # Among this run's rows: a measurement beats an infeasible
        # marker, and the fastest measurement wins; among infeasible
        # markers the latest wins.
        if (
            previous is None
            or previous["seconds"] is None
            or (row["seconds"] is not None and row["seconds"] < previous["seconds"])
        ):
            measured[key] = row
    best.update(measured)
    entries = sorted(best.values(), key=lambda r: (r["scenario"], r["backend"]))
    by_scenario: dict[str, dict[str, dict]] = {}
    for row in entries:
        by_scenario.setdefault(row["scenario"], {})[row["backend"]] = row
    speedups = {}
    kernel_speedups = {}
    array_speedups = {}
    for name, rows in by_scenario.items():
        explicit_over_inline = _ratio(rows.get("explicit"), rows.get("inline"))
        if explicit_over_inline is not None:
            speedups[name] = explicit_over_inline
        tuple_over_columnar = _ratio(rows.get("inline-tuple"), rows.get("inline"))
        if tuple_over_columnar is not None:
            kernel_speedups[name] = tuple_over_columnar
        columnar_over_array = _ratio(rows.get("inline"), rows.get("inline-array"))
        if columnar_over_array is not None:
            array_speedups[name] = columnar_over_array
    payload = {
        "generated_by": "benchmarks/bench_backends.py",
        "entries": entries,
        "inline_speedup_over_explicit": speedups,
        "columnar_speedup_over_tuple_kernel": kernel_speedups,
        "array_speedup_over_columnar_kernel": array_speedups,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="session")
def backend_recorder():
    """The recording hook handed to bench_backends (same module instance
    as the session-finish writer, unlike a direct conftest import)."""
    return record_backend_timing


@pytest.fixture(scope="module")
def small_flights():
    return flights(6, 8, 3, seed=1)


@pytest.fixture(scope="module")
def medium_flights():
    return flights(15, 20, 5, seed=1)


@pytest.fixture(scope="module")
def large_flights():
    return flights(30, 40, 8, seed=1)


@pytest.fixture(scope="module")
def small_hotels():
    return hotels(8, 2, seed=1)
