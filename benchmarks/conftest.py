"""Shared benchmark fixtures, scaling workloads, and JSON reporting.

Benchmarks that compare execution backends append rows to
:data:`BACKEND_BENCH_RESULTS` (via :func:`record_backend_timing`); at
the end of the benchmark session the rows are written to
``BENCH_backends.json`` in the repository root, so the explicit-vs-
inline performance trajectory is machine-readable and tracked across
PRs.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import pytest

from repro.datagen import flights, hotels

#: Rows recorded by bench_backends.py during this pytest session.
BACKEND_BENCH_RESULTS: list[dict] = []


def record_backend_timing(
    scenario: str,
    backend: str,
    seconds: float,
    session_worlds: int,
    result_worlds: int,
    scenario_worlds: int,
    representation_size: int,
    answer_rows: int,
) -> None:
    """Append one (scenario, backend) timing row for BENCH_backends.json.

    *session_worlds* is the state's world count after the script,
    *result_worlds* the final query result's, and *scenario_worlds* the
    size of the world space the query evaluation ranges over (a closed
    query may collapse back to one world at the very end).
    """
    BACKEND_BENCH_RESULTS.append(
        {
            "scenario": scenario,
            "backend": backend,
            "seconds": round(seconds, 6),
            "session_worlds": session_worlds,
            "result_worlds": result_worlds,
            "scenario_worlds": scenario_worlds,
            "representation_size": representation_size,
            "answer_rows": answer_rows,
            # Provenance: ratios are only computed between rows from the
            # same interpreter on the same platform (best effort — a
            # hostname would identify machines exactly but does not
            # belong in a committed file).
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
    )


def pytest_sessionfinish(session, exitstatus):
    if not BACKEND_BENCH_RESULTS:
        return
    path = Path(__file__).resolve().parent.parent / "BENCH_backends.json"
    # One row per (scenario, backend): several tests may time the same
    # pair in one session (keep the best of this run), and a partial run
    # must not wipe rows of scenarios it did not touch (carry those over
    # from the previous file). Fresh measurements always replace old
    # ones — never min across runs, or regressions would be masked.
    best: dict[tuple[str, str], dict] = {}
    if path.exists():
        try:
            for row in json.loads(path.read_text()).get("entries", []):
                best[(row["scenario"], row["backend"])] = row
        except (ValueError, KeyError):
            pass  # unreadable previous file: rebuild from this run
    measured: dict[tuple[str, str], dict] = {}
    for row in BACKEND_BENCH_RESULTS:
        key = (row["scenario"], row["backend"])
        if key not in measured or row["seconds"] < measured[key]["seconds"]:
            measured[key] = row
    best.update(measured)
    entries = sorted(best.values(), key=lambda r: (r["scenario"], r["backend"]))
    # A carried-over row may come from another machine/interpreter; only
    # pairs with matching provenance yield a meaningful ratio.
    by_scenario: dict[str, dict[str, dict]] = {}
    for row in entries:
        by_scenario.setdefault(row["scenario"], {})[row["backend"]] = row
    speedups = {}
    for name, rows in by_scenario.items():
        explicit, inline = rows.get("explicit"), rows.get("inline")
        if (
            explicit
            and inline
            and inline["seconds"] > 0
            and explicit.get("python") == inline.get("python")
            and explicit.get("platform") == inline.get("platform")
        ):
            speedups[name] = round(explicit["seconds"] / inline["seconds"], 2)
    payload = {
        "generated_by": "benchmarks/bench_backends.py",
        "entries": entries,
        "inline_speedup_over_explicit": speedups,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="session")
def backend_recorder():
    """The recording hook handed to bench_backends (same module instance
    as the session-finish writer, unlike a direct conftest import)."""
    return record_backend_timing


@pytest.fixture(scope="module")
def small_flights():
    return flights(6, 8, 3, seed=1)


@pytest.fixture(scope="module")
def medium_flights():
    return flights(15, 20, 5, seed=1)


@pytest.fixture(scope="module")
def large_flights():
    return flights(30, 40, 8, seed=1)


@pytest.fixture(scope="module")
def small_hotels():
    return hotels(8, 2, seed=1)
