"""Fail CI when inline benchmark timings regress past a threshold.

Compares a freshly generated ``BENCH_backends.json`` against the
committed baseline (the file as of the base commit) and exits non-zero
if any scenario's **inline** time grew by more than ``--threshold``
(default 2×).

The committed baseline is usually recorded on different hardware than
the CI runner, so raw seconds are only compared when the two rows share
provenance (interpreter + platform). Otherwise the gate compares
*hardware-normalized* metrics: the inline seconds divided by a
same-file reference row of the same scenario — the explicit backend
when it was measured, else the ``inline-tuple`` kernel row. A slower
runner slows the reference by the same factor, so the ratio isolates
real inline regressions from machine variance.

Rules:

* only ``backend == "inline"`` rows gate (the explicit engine is the
  reference implementation, not the product of perf work);
* same-provenance rows measured at under ``--min-seconds`` (default
  2 ms) are skipped — at that scale timer noise dominates;
* infeasible rows (``seconds`` null) and scenarios missing from either
  file are skipped, as are cross-provenance scenarios without a common
  reference row;
* a scenario that *became* infeasible while the baseline measured it is
  reported as a regression (losing the ability to run is the worst
  regression of all);
* the recorded inline **route** gates too: a scenario whose baseline
  row says ``route=direct`` must not come back as ``route=fallback`` —
  silently re-routing through the explicit engine is an architectural
  regression even when the seconds happen to pass. Newly-direct
  scenarios (baseline ``route=fallback``, current ``route=direct``)
  are gated on seconds like every other row from this run onward; the
  next committed baseline then pins both the faster seconds and the
  direct route;
* the ``dml_apply`` **per-phase time** gates like the end-to-end
  seconds (same-provenance rows only — phases are too small for the
  cross-machine normalization to be meaningful): DML work hides inside
  a scenario's total, and the dedicated phase is what keeps a
  mask/scatter regression from drowning in plan-evaluation noise. A
  baseline row that recorded the phase whose current row lost it is a
  regression too — dropped instrumentation would silently disarm this
  very gate;
* **DML scenarios** (name contains ``dml``) are held to stricter
  presence rules: one that vanishes from the current file entirely, or
  whose ``inline-tuple`` kernel-vs-kernel row disappears, fails the
  gate — the DML hot path must stay measured on both kernels, not just
  fast last time it happened to run. (The benchmark writer carries
  unmeasured rows over from the committed file, so partial CI runs
  still satisfy this.)
* the armed **resource-guard overhead** gates absolutely: the
  ``inline-guarded`` row's ``guard_overhead`` (a paired same-process
  guarded/unguarded ratio recorded by the benchmark) must stay ≤
  ``--guard-threshold`` (default 1.1×) whenever the guarded run is
  slow enough to measure, and a baseline file's guarded row must not
  silently disappear — armed checkpoints becoming expensive is a
  kernel-hot-path regression the end-to-end seconds would dilute;
* the service layer's pooled **read path** gates the same way: the
  ``inline-pool`` row's ``snapshot_overhead`` (a paired same-process
  pooled-concurrent-readers / single-session ratio recorded by the
  benchmark) must stay ≤ ``--snapshot-threshold`` (default 1.2×)
  whenever the pooled run is slow enough to measure, and a baseline
  file's pool row must not silently disappear — connection checkout,
  snapshot sync and the DBAPI text path becoming expensive is exactly
  the regression the ``pool_concurrent_readers`` benchmark exists to
  catch;
* the per-scenario **representation size** gates absolutely across
  machines (row counts are hardware-independent): an inline-family
  row (``inline``, ``inline-tuple``, ``inline-array``) whose committed
  ``representation_size`` grows past ``--size-threshold`` (default
  1.5×) fails — the factored per-group world-id encoding keeps
  repaired scenarios *sum*-sized, and a regression back toward the
  joint *product* encoding (e.g. ``census_repair_xl`` returning from
  ~10² to ~2·10⁵ rows) is an architectural regression even when the
  seconds happen to pass. A measured row that *loses* the field while
  the baseline recorded it fails too — dropped instrumentation would
  silently disarm this gate;
* the prepared-statement **replay speedup** gates absolutely: the
  ``inline-replay`` row's ``plan_cache_speedup`` (a paired same-process
  uncached/cached ratio recorded by the benchmark — the same statement
  re-executed 100× under interleaved DML) must stay ≥
  ``--replay-threshold`` (default 3×) whenever the uncached side is
  slow enough to measure, a baseline replay row must not silently
  disappear, and a measured replay row must keep its
  ``plan_cache_speedup`` *and* ``cache_hit_rate`` fields once the
  baseline recorded them — dropped cache instrumentation would disarm
  the very gate that guards the statement cache's reason to exist;
* the ``array_speedup_over_columnar_kernel`` map gates on presence and
  threshold: a scenario whose baseline file records an array-vs-
  columnar speedup must still record one (the ``inline-array`` row and
  the ratio must not silently disappear), and the current speedup must
  not fall below the baseline's divided by ``--threshold`` — the array
  kernel losing its edge is exactly the regression ISSUE 6's ≥ 5×
  acceptance bar exists to catch. Ratios are computed between
  same-provenance rows by the writer, so they compare cleanly across
  machines.

Usage::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json \
        [--threshold 2.0] [--min-seconds 0.002]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

GATED_BACKEND = "inline"

#: Same-file rows used to normalize away hardware differences, in
#: preference order.
REFERENCE_BACKENDS = ("explicit", "inline-tuple")

#: The per-phase timings gated like end-to-end seconds (same-provenance
#: rows only).
GATED_PHASES = ("dml_apply",)

#: Inline-family rows whose ``representation_size`` gates absolutely
#: (sizes are deterministic row counts — no hardware normalization).
SIZE_GATED_BACKENDS = ("inline", "inline-tuple", "inline-array")

#: The representation-size bar: a committed factored (sum-sized) row
#: must not regress toward the joint product encoding. Deliberately
#: tighter than the timing threshold — sizes are noise-free.
SIZE_THRESHOLD = 1.5

#: Below this, a guarded-vs-unguarded ratio is timer jitter, not a
#: measurement — guard rows on faster-than-this scenarios do not gate.
GUARD_MIN_SECONDS = 0.05

#: The armed resource-guard overhead bar: guarded/unguarded wall-clock
#: on the paired same-process runs must stay within this factor.
GUARD_THRESHOLD = 1.1

#: Below this, a pooled-vs-plain ratio is timer jitter, not a
#: measurement — pool rows on faster-than-this read batches do not gate.
SNAPSHOT_MIN_SECONDS = 0.05

#: The service-layer read-path bar: pooled concurrent readers against
#: the paired same-process single-session replay (checkout, snapshot
#: sync, the DBAPI text path, checkin) must stay within this factor.
SNAPSHOT_THRESHOLD = 1.2

#: Below this *uncached* wall-clock (cached seconds × speedup), a
#: replay ratio is timer jitter, not a measurement.
REPLAY_MIN_SECONDS = 0.05

#: The prepared-statement replay bar: the paired same-process
#: uncached/cached ratio on ``inline-replay`` rows must not collapse
#: below this — the plan cache + result memo losing their edge is the
#: regression the PR 10 ≥ 3× acceptance bar exists to catch.
REPLAY_THRESHOLD = 3.0


def _is_dml(scenario: str) -> bool:
    """DML scenarios get the stricter presence rules."""
    return "dml" in scenario


def _rows(payload: dict, backend: str) -> dict[str, dict]:
    return {
        row["scenario"]: row
        for row in payload.get("entries", [])
        if row.get("backend") == backend
    }


def _provenance(row: dict) -> tuple:
    return (row.get("python"), row.get("platform"))


def _normalized(payload: dict, scenario: str, inline_row: dict) -> tuple[float, str] | None:
    """inline seconds over a same-file reference row's seconds.

    The reference must share the inline row's provenance — a merged
    file can carry rows from several machines, and dividing machine-B
    inline seconds by a machine-A reference would manufacture (or mask)
    a regression.
    """
    for backend in REFERENCE_BACKENDS:
        reference = _rows(payload, backend).get(scenario)
        if (
            reference
            and reference.get("seconds")
            and _provenance(reference) == _provenance(inline_row)
        ):
            return inline_row["seconds"] / reference["seconds"], backend
    return None


def _phase_problems(
    scenario: str, old: dict, new: dict, threshold: float, min_seconds: float
) -> list[str]:
    """Per-phase regressions between two same-provenance inline rows."""
    problems: list[str] = []
    old_phases = old.get("phases") or {}
    new_phases = new.get("phases") or {}
    for name in GATED_PHASES:
        old_value = old_phases.get(name)
        if old_value is None or old_value < min_seconds:
            continue
        new_value = new_phases.get(name)
        if new_value is None:
            problems.append(
                f"{scenario}: the {name} phase was {old_value:.4f}s at "
                "baseline but is missing from the current row — dropped "
                "instrumentation disarms this gate"
            )
        elif new_value > old_value * threshold:
            problems.append(
                f"{scenario}: {name} phase {old_value:.4f}s → "
                f"{new_value:.4f}s ({new_value / old_value:.2f}× > "
                f"{threshold:.1f}× threshold)"
            )
    return problems


def _size_problems(
    baseline: dict, current: dict, size_threshold: float
) -> list[str]:
    """Representation-size regressions across the inline-family rows.

    Sizes are deterministic row counts, so they compare absolutely —
    across machines, with no noise floor. The factored per-group id
    encoding is what keeps repaired scenarios sum-sized; growing past
    the threshold means the encoding slid back toward the joint
    product.
    """
    problems: list[str] = []
    for backend in SIZE_GATED_BACKENDS:
        current_rows = _rows(current, backend)
        for scenario, old in sorted(_rows(baseline, backend).items()):
            old_size = old.get("representation_size")
            if old_size is None:
                continue
            new = current_rows.get(scenario)
            if new is None:
                continue  # not re-measured in this run
            new_size = new.get("representation_size")
            if new_size is None:
                if new.get("seconds") is None:
                    continue  # infeasible row records no size
                problems.append(
                    f"{scenario}: {backend} representation_size was "
                    f"{old_size} at baseline but is missing from the "
                    "current row — dropped instrumentation disarms this "
                    "gate"
                )
            elif new_size > old_size * size_threshold:
                problems.append(
                    f"{scenario}: {backend} representation_size "
                    f"{old_size} → {new_size} "
                    f"({new_size / old_size:.2f}× > "
                    f"{size_threshold:.1f}× size threshold) — the "
                    "factored encoding regressed toward product size"
                )
    return problems


def check(
    baseline: dict,
    current: dict,
    threshold: float,
    min_seconds: float,
    guard_threshold: float = GUARD_THRESHOLD,
    size_threshold: float = SIZE_THRESHOLD,
    snapshot_threshold: float = SNAPSHOT_THRESHOLD,
    replay_threshold: float = REPLAY_THRESHOLD,
) -> list[str]:
    """The list of regression messages (empty = pass)."""
    problems: list[str] = []
    baseline_rows = _rows(baseline, GATED_BACKEND)
    current_rows = _rows(current, GATED_BACKEND)
    for scenario, old in sorted(baseline_rows.items()):
        old_seconds = old.get("seconds")
        if old_seconds is None:
            continue
        new = current_rows.get(scenario)
        if new is None:
            if _is_dml(scenario):
                problems.append(
                    f"{scenario}: DML scenario dropped from the current "
                    "file — its inline row must stay measured (or carried "
                    "over by the benchmark writer)"
                )
            continue  # not re-measured in this run
        new_seconds = new.get("seconds")
        if new_seconds is None:
            problems.append(
                f"{scenario}: inline was {old_seconds:.4f}s at baseline "
                "but is now recorded as infeasible"
            )
            continue
        if old.get("route") == "direct" and new.get("route") == "fallback":
            problems.append(
                f"{scenario}: inline route regressed direct → fallback "
                f"({new.get('fallback_reason') or 'no reason recorded'})"
            )
        if _provenance(old) == _provenance(new):
            problems.extend(
                _phase_problems(scenario, old, new, threshold, min_seconds)
            )
            if old_seconds < min_seconds:
                continue
            if new_seconds > old_seconds * threshold:
                problems.append(
                    f"{scenario}: inline {old_seconds:.4f}s → {new_seconds:.4f}s "
                    f"({new_seconds / old_seconds:.2f}× > {threshold:.1f}× threshold)"
                )
            continue
        # Different machines: compare normalized against a same-file
        # reference row instead of raw seconds. The noise floor applies
        # here too — a ratio of two ~1 ms timings is all jitter.
        if old_seconds < min_seconds or new_seconds < min_seconds:
            continue
        old_norm = _normalized(baseline, scenario, old)
        new_norm = _normalized(current, scenario, new)
        if old_norm is None or new_norm is None:
            continue
        old_ratio, old_ref = old_norm
        new_ratio, new_ref = new_norm
        if new_ratio > old_ratio * threshold:
            problems.append(
                f"{scenario}: inline/{new_ref} ratio {old_ratio:.3f} → "
                f"{new_ratio:.3f} ({new_ratio / old_ratio:.2f}× > "
                f"{threshold:.1f}× threshold; cross-machine, normalized "
                f"by {old_ref}/{new_ref})"
            )
    # DML scenarios must keep their kernel-vs-kernel comparison: losing
    # the inline-tuple row means the columnar speedup on the DML hot
    # path is no longer tracked at all.
    current_kernel_rows = _rows(current, "inline-tuple")
    for scenario in sorted(_rows(baseline, "inline-tuple")):
        if _is_dml(scenario) and scenario not in current_kernel_rows:
            problems.append(
                f"{scenario}: the inline-tuple kernel-vs-kernel row "
                "disappeared — the DML hot path must stay measured on "
                "both kernels"
            )
    # Array-vs-columnar speedups gate on presence and threshold: the
    # ratio map is recomputed by the writer from the merged rows, so a
    # missing entry means the inline-array measurement itself was lost.
    # Armed resource guards must stay near-free. The ``inline-guarded``
    # row's ``guard_overhead`` is a paired same-process ratio recorded
    # by the benchmark itself, so it gates *absolutely* — no baseline
    # comparison, no cross-machine normalization needed. Losing the row
    # (while its scenario stays measured) disarms the gate and fails it.
    current_guarded = _rows(current, "inline-guarded")
    for scenario, guarded in sorted(current_guarded.items()):
        overhead = guarded.get("guard_overhead")
        seconds = guarded.get("seconds")
        if overhead is None or seconds is None or seconds < GUARD_MIN_SECONDS:
            continue
        if overhead > guard_threshold:
            problems.append(
                f"{scenario}: armed resource-guard overhead {overhead:.3f}× "
                f"> {guard_threshold:.2f}× budget — checkpoints are no "
                "longer near-free on the kernel hot path"
            )
    for scenario in sorted(_rows(baseline, "inline-guarded")):
        if scenario not in current_guarded:
            problems.append(
                f"{scenario}: the inline-guarded overhead row disappeared "
                "— the armed-guard cost must stay measured (or carried "
                "over by the benchmark writer)"
            )
    # The service layer's read path gates the same way: the
    # ``inline-pool`` row's ``snapshot_overhead`` is a paired
    # same-process pooled/plain ratio recorded by the benchmark, so it
    # gates absolutely, and a baseline pool row must not silently
    # disappear — connection checkout, snapshot sync and the DBAPI text
    # path becoming expensive is exactly what the pool benchmark exists
    # to catch.
    current_pool = _rows(current, "inline-pool")
    for scenario, pooled in sorted(current_pool.items()):
        overhead = pooled.get("snapshot_overhead")
        seconds = pooled.get("seconds")
        if overhead is None or seconds is None or seconds < SNAPSHOT_MIN_SECONDS:
            continue
        if overhead > snapshot_threshold:
            problems.append(
                f"{scenario}: pooled-reader snapshot overhead "
                f"{overhead:.3f}× > {snapshot_threshold:.2f}× budget — "
                "the service layer's read path is no longer near-free"
            )
    for scenario in sorted(_rows(baseline, "inline-pool")):
        if scenario not in current_pool:
            problems.append(
                f"{scenario}: the inline-pool overhead row disappeared — "
                "the pooled-reader cost must stay measured (or carried "
                "over by the benchmark writer)"
            )
    # The prepared-statement replay: the ``inline-replay`` row's
    # ``plan_cache_speedup`` is a paired same-process uncached/cached
    # ratio recorded by the benchmark, so it gates absolutely. The
    # noise floor is on the *uncached* side (cached seconds × speedup):
    # a cached replay is supposed to be tiny, its paired baseline must
    # not be. Baseline replay rows must not silently disappear, and a
    # measured replay row must keep the cache fields the baseline
    # recorded — dropped instrumentation disarms this gate.
    current_replay = _rows(current, "inline-replay")
    for scenario, replay in sorted(current_replay.items()):
        speedup = replay.get("plan_cache_speedup")
        seconds = replay.get("seconds")
        if speedup is None or seconds is None:
            continue
        if seconds * speedup < REPLAY_MIN_SECONDS:
            continue
        if speedup < replay_threshold:
            problems.append(
                f"{scenario}: plan-cache replay speedup {speedup:.2f}× "
                f"< {replay_threshold:.1f}× budget — the statement cache "
                "collapsed on the prepared-statement hot path"
            )
    baseline_replay = _rows(baseline, "inline-replay")
    for scenario, old in sorted(baseline_replay.items()):
        new = current_replay.get(scenario)
        if new is None:
            problems.append(
                f"{scenario}: the inline-replay row disappeared — the "
                "plan-cache speedup must stay measured (or carried over "
                "by the benchmark writer)"
            )
            continue
        if new.get("seconds") is None:
            continue  # infeasible rows record no cache fields
        for field in ("plan_cache_speedup", "cache_hit_rate"):
            if old.get(field) is not None and new.get(field) is None:
                problems.append(
                    f"{scenario}: the inline-replay row lost its {field} "
                    "field — dropped cache instrumentation disarms this "
                    "gate"
                )
    problems.extend(_size_problems(baseline, current, size_threshold))
    old_array = baseline.get("array_speedup_over_columnar_kernel") or {}
    new_array = current.get("array_speedup_over_columnar_kernel") or {}
    for scenario, old_speedup in sorted(old_array.items()):
        new_speedup = new_array.get(scenario)
        if new_speedup is None:
            problems.append(
                f"{scenario}: the array-vs-columnar speedup disappeared "
                f"(was {old_speedup:.2f}×) — the inline-array row must "
                "stay measured (or carried over by the benchmark writer)"
            )
        elif new_speedup < old_speedup / threshold:
            problems.append(
                f"{scenario}: array-vs-columnar speedup {old_speedup:.2f}× "
                f"→ {new_speedup:.2f}× (fell past the "
                f"{threshold:.1f}× threshold)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--threshold", type=float, default=2.0)
    parser.add_argument("--min-seconds", type=float, default=0.002)
    parser.add_argument("--guard-threshold", type=float, default=GUARD_THRESHOLD)
    parser.add_argument("--size-threshold", type=float, default=SIZE_THRESHOLD)
    parser.add_argument(
        "--snapshot-threshold", type=float, default=SNAPSHOT_THRESHOLD
    )
    parser.add_argument(
        "--replay-threshold", type=float, default=REPLAY_THRESHOLD
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    problems = check(
        baseline,
        current,
        args.threshold,
        args.min_seconds,
        guard_threshold=args.guard_threshold,
        size_threshold=args.size_threshold,
        snapshot_threshold=args.snapshot_threshold,
        replay_threshold=args.replay_threshold,
    )
    if problems:
        print("inline benchmark regressions:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    compared = sorted(
        set(_rows(baseline, GATED_BACKEND)) & set(_rows(current, GATED_BACKEND))
    )
    print(
        f"no inline regression past {args.threshold:.1f}× "
        f"across {len(compared)} scenarios: {', '.join(compared)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
