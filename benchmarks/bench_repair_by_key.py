"""Experiment Prop. 4.2: repair-by-key world growth and the reduction.

Shape claims: the number of repairs grows exponentially with the number
of key-violating groups (2ⁿ for n duplicated keys — the paper's
"exponentially many worlds"), counting them is cheap, enumerating them
is not, and the 3-colorability reduction decides small instances.
"""

import time

from repro.core import count_repairs, key_repairs
from repro.core.np_hard import brute_force_colorable, is_colorable
from repro.datagen import census, random_graph


def test_count_repairs_large_census(benchmark):
    dirty = census(200, duplicate_rate=0.5, seed=7)
    count = benchmark(lambda: count_repairs(dirty, ("SSN",)))
    assert count > 1


def test_enumerate_repairs_small_census(benchmark):
    dirty = census(10, duplicate_rate=0.8, seed=7)
    repairs = benchmark(lambda: list(key_repairs(dirty, ("SSN",))))
    assert len(repairs) == count_repairs(dirty, ("SSN",))


def test_three_colorability_via_wsa(benchmark):
    vertices, edges = random_graph(5, 0.5, seed=3)
    verdict = benchmark(lambda: is_colorable(vertices, edges))
    assert verdict == brute_force_colorable(vertices, edges)


def test_shape_exponential_world_growth(benchmark):
    """Repair counts double with each extra duplicated key."""

    def counts():
        results = []
        for duplicates in (2, 4, 6, 8, 10):
            dirty = census(duplicates, duplicate_rate=1.0, seed=1)
            results.append(count_repairs(dirty, ("SSN",)))
        return results

    measured = benchmark(counts)
    for smaller, larger in zip(measured, measured[1:]):
        assert larger == smaller * 4  # two more duplicates → ×2² worlds


def test_shape_counting_beats_enumeration(benchmark):
    dirty = census(12, duplicate_rate=1.0, seed=5)

    start = time.perf_counter()
    count = count_repairs(dirty, ("SSN",))
    counting_time = time.perf_counter() - start

    start = time.perf_counter()
    enumerated = sum(1 for _ in key_repairs(dirty, ("SSN",)))
    enumeration_time = time.perf_counter() - start

    assert enumerated == count == 2**12
    assert counting_time < enumeration_time
    benchmark(lambda: count_repairs(dirty, ("SSN",)))
