"""Experiment §5.3 / Ex. 5.8: optimized vs general translation output.

Both translations of `cert(π_Arr(χ_Dep(HFlights)))` are evaluated over
a scaled HFlights. Shape claims: the optimized query is smaller and
evaluates faster (Section 5.3's stated purpose), and the Example 5.8
compact form is the fastest route of all.
"""

import time

from repro.core import cert, choice_of, project, rel
from repro.inline import conservative_ra_query, optimized_ra_query
from repro.relational import Database

QUERY = cert(project("Arr", choice_of("Dep", rel("HFlights"))))


def _db(flights):
    return Database({"HFlights": flights})


def test_general_query_evaluation(benchmark, medium_flights):
    db = _db(medium_flights)
    expr = conservative_ra_query(QUERY, db.schemas())
    result = benchmark(lambda: expr.evaluate(db))
    assert result.rows == {("A0",)}


def test_optimized_query_evaluation(benchmark, medium_flights):
    db = _db(medium_flights)
    expr = optimized_ra_query(QUERY, db.schemas())
    result = benchmark(lambda: expr.evaluate(db))
    assert result.rows == {("A0",)}


def test_example58_compact_form_evaluation(benchmark, medium_flights):
    db = _db(medium_flights)
    expr = optimized_ra_query(QUERY, db.schemas(), assume_nonempty=True)
    result = benchmark(lambda: expr.evaluate(db))
    assert result.rows == {("A0",)}


def test_shape_optimized_is_smaller_and_faster(benchmark, large_flights):
    db = _db(large_flights)
    general = conservative_ra_query(QUERY, db.schemas())
    optimized = optimized_ra_query(QUERY, db.schemas())
    assert optimized.size() < general.size()

    start = time.perf_counter()
    general_answer = general.evaluate(db)
    general_time = time.perf_counter() - start

    optimized_answer = benchmark(lambda: optimized.evaluate(db))
    start = time.perf_counter()
    optimized.evaluate(db)
    optimized_time = time.perf_counter() - start

    assert general_answer == optimized_answer
    assert optimized_time < general_time
