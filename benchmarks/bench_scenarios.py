"""Experiment §2 end-to-end: the decision-support scenarios at scale.

Runs the full company-acquisition script and the TPC-H what-if pipeline
through the I-SQL engine on generated workloads, plus the census
repair + certain-answer pipeline. These are the macro-benchmarks of
the reproduction: whole multi-statement programs over world-sets.
"""

import pytest

from repro.datagen import census, company, lineitem
from repro.isql import ISQLSession

ACQUISITION_SCRIPT = """
U <- select * from Company_Emp choice of CID;
V <- select R1.CID, R1.EID
     from Company_Emp R1, (select * from U choice of EID) R2
     where R1.CID = R2.CID and R1.EID != R2.EID;
W <- select certain CID, Skill
     from V, Emp_Skills
     where V.EID = Emp_Skills.EID
     group worlds by (select CID from V);
"""


def test_company_acquisition_pipeline(benchmark):
    company_emp, emp_skills = company(4, 5, 6, 2, seed=2)

    def run():
        session = ISQLSession()
        session.register("Company_Emp", company_emp)
        session.register("Emp_Skills", emp_skills)
        session.execute(ACQUISITION_SCRIPT)
        return session.query(
            "select possible CID from W where Skill = 'S0';"
        ).relation

    result = benchmark(run)
    assert result.schema.attributes == ("CID",)


def test_tpch_what_if_pipeline(benchmark):
    items = lineitem(
        years=(2002, 2003, 2004), n_products=10, n_quantities=3,
        rows_per_year=25, seed=2,
    )

    def run():
        session = ISQLSession()
        session.register("Lineitem", items)
        session.execute(
            """create view YearQuantity as
               select A.Year, sum(A.Price) as Revenue
               from (select * from Lineitem choice of Year) as A
               where Quantity not in
                 (select * from Lineitem choice of Quantity)
               group by A.Year;"""
        )
        return session.query(
            """select possible Year from YearQuantity as Y
               where (select sum(Price) from Lineitem
                      where Lineitem.Year = Y.Year)
                     - Y.Revenue > 1000;"""
        ).relation

    result = benchmark(run)
    assert result.schema.attributes == ("Year",)


def test_census_repair_pipeline(benchmark):
    dirty = census(8, duplicate_rate=0.8, seed=4)

    def run():
        session = ISQLSession()
        session.register("Census", dirty)
        session.execute("Clean <- select * from Census repair by key SSN;")
        return session.query("select certain SSN, Name from Clean;").relation

    result = benchmark(run)
    assert len(result) >= 8


def test_shape_acquisition_world_counts(benchmark):
    """World counts follow the paper's arithmetic: |companies| after U,
    then Σ per-company (employees choose-one) after V."""
    company_emp, emp_skills = company(3, 4, 5, 2, seed=9)
    session = ISQLSession()
    session.register("Company_Emp", company_emp)
    session.register("Emp_Skills", emp_skills)
    session.execute("U <- select * from Company_Emp choice of CID;")
    assert session.world_count() == 3
    session.execute(
        """V <- select R1.CID, R1.EID
           from Company_Emp R1, (select * from U choice of EID) R2
           where R1.CID = R2.CID and R1.EID != R2.EID;"""
    )
    assert session.world_count() == 3 * 4
    benchmark(lambda: session.query("select possible CID from V;").relation)
