"""Experiment Ex. 6.1/6.2, Figures 8/9: do the rewrites pay off?

Evaluates q1/q1' and q2/q2' (the paper's hotel-meeting queries) under
the Figure 3 semantics on generated Flights × Hotels data. Shape
claims: both rewrites preserve answers and win by a large factor (the
rewritten plans avoid materializing the χ_{Dep,City} world-set of size
|Dep| × |City|).
"""

import time

from repro.core import (
    answer,
    cert,
    choice_of,
    poss,
    poss_group,
    product,
    project,
    rel,
    select,
)
from repro.datagen import flights, hotels
from repro.optimizer import optimize
from repro.relational import eq
from repro.worlds import World, WorldSet

SCHEMAS = {"HFlights": ("Dep", "Arr"), "Hotels": ("Name", "City", "Price")}


def _query(closing):
    inner = poss_group(
        ("Dep",),
        ("Dep", "Arr", "Name", "City", "Price"),
        choice_of(("Dep", "City"), product(rel("HFlights"), rel("Hotels"))),
    )
    return closing(project("City", select(eq("Arr", "City"), inner)))


def _world_set():
    return WorldSet.single(
        World.of(
            {"HFlights": flights(6, 8, 3, seed=1), "Hotels": hotels(8, 2, seed=1)}
        )
    )


def test_q1_original(benchmark):
    ws = _world_set()
    query = _query(cert)
    benchmark(lambda: answer(query, ws))


def test_q1_rewritten(benchmark):
    ws = _world_set()
    rewritten, _ = optimize(_query(cert), SCHEMAS)
    benchmark(lambda: answer(rewritten, ws))


def test_q2_original(benchmark):
    ws = _world_set()
    query = _query(poss)
    benchmark(lambda: answer(query, ws))


def test_q2_rewritten(benchmark):
    ws = _world_set()
    rewritten, _ = optimize(_query(poss), SCHEMAS)
    benchmark(lambda: answer(rewritten, ws))


def test_shape_rewrites_win(benchmark):
    ws = _world_set()
    for closing in (cert, poss):
        query = _query(closing)
        rewritten, _ = optimize(query, SCHEMAS)

        start = time.perf_counter()
        original_answer = answer(query, ws)
        original_time = time.perf_counter() - start

        start = time.perf_counter()
        rewritten_answer = answer(rewritten, ws)
        rewritten_time = time.perf_counter() - start

        assert original_answer == rewritten_answer
        assert rewritten_time < original_time

    benchmark(lambda: optimize(_query(cert), SCHEMAS))
