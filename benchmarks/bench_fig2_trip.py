"""Experiment Fig. 2 / Ex. 3.1–3.2: trip planning across evaluation routes.

The certain-arrivals query `cert(π_Arr(χ_Dep(Flights)))` is evaluated
three ways on a scaled Flights relation:

* the Figure 3 reference semantics on explicit world-sets,
* the Figure 6 general translation over the inlined representation,
* the §5.3 optimized relational query.

Shape claim: all three agree; the optimized relational route is the
fastest, the explicit world-set route the slowest (the paper's stated
motivation for translating to relational algebra).
"""

import time

from repro.core import answer, cert, choice_of, project, rel
from repro.inline import (
    InlinedRepresentation,
    apply_general,
    optimized_ra_query,
)
from repro.relational import Database
from repro.worlds import World, WorldSet

QUERY = cert(project("Arr", choice_of("Dep", rel("Flights"))))


def _world_set(flights):
    return WorldSet.single(World.of({"Flights": flights}))


def test_direct_semantics(benchmark, medium_flights):
    ws = _world_set(medium_flights)
    result = benchmark(lambda: answer(QUERY, ws))
    assert result.rows == {("A0",)}


def test_general_translation_route(benchmark, medium_flights):
    rep = InlinedRepresentation.of_database(Database({"Flights": medium_flights}))

    def run():
        out = apply_general(QUERY, rep, name="F")
        return next(iter(out.rep().worlds))["F"]

    result = benchmark(run)
    assert result.rows == {("A0",)}


def test_optimized_translation_route(benchmark, medium_flights):
    db = Database({"Flights": medium_flights})
    expr = optimized_ra_query(QUERY, db.schemas())
    result = benchmark(lambda: expr.evaluate(db))
    assert result.rows == {("A0",)}


def test_shape_optimized_beats_direct(benchmark, large_flights):
    """The headline shape: relational evaluation wins at scale."""
    db = Database({"Flights": large_flights})
    ws = _world_set(large_flights)
    expr = optimized_ra_query(QUERY, db.schemas())

    start = time.perf_counter()
    direct = answer(QUERY, ws)
    direct_time = time.perf_counter() - start

    optimized = benchmark(lambda: expr.evaluate(db))
    start = time.perf_counter()
    expr.evaluate(db)
    optimized_time = time.perf_counter() - start

    assert optimized == direct
    assert optimized_time < direct_time
