"""Experiment Fig. 6 / Thm. 5.7: translation speed and polynomial size.

Measures the cost of *producing* the relational algebra query from a
world-set algebra query (the translation itself, which the paper calls
"an efficient algorithm"), and asserts the polynomial-size claim by
sweeping the nesting depth of choice-of/cert blocks.
"""

from repro.core import cert, choice_of, poss, poss_group, project, rel
from repro.inline import GeneralTranslator, conservative_ra_query

SCHEMAS = {"R": ("A", "B")}


def _nested_query(depth):
    query = rel("R")
    for _ in range(depth):
        query = choice_of("A", query)
        query = poss_group(("A",), ("A", "B"), query)
    return cert(project("A", query))


def test_translate_shallow_query(benchmark):
    query = _nested_query(1)
    benchmark(lambda: conservative_ra_query(query, SCHEMAS))


def test_translate_deep_query(benchmark):
    query = _nested_query(6)
    benchmark(lambda: conservative_ra_query(query, SCHEMAS))


def test_translator_on_wide_schema(benchmark):
    schemas = {f"T{i}": ("A", "B") for i in range(20)}
    schemas["R"] = ("A", "B")
    query = cert(project("A", choice_of("A", rel("R"))))

    def run():
        translator = GeneralTranslator(schemas, ())
        return translator.translate(query)

    benchmark(run)


def test_shape_translated_size_is_polynomial(benchmark):
    """dag_size(q') grows linearly in the nesting depth (Theorem 5.7:
    'a relational algebra query of polynomial size'). The Figure 6
    translation is let-bound, so the DAG node count is the faithful
    metric; the unshared tree blows up exponentially."""

    def sizes():
        return [
            conservative_ra_query(_nested_query(depth), SCHEMAS).dag_size()
            for depth in range(1, 7)
        ]

    measured = benchmark(sizes)
    deltas = [b - a for a, b in zip(measured, measured[1:])]
    # Linear growth: the per-level increment is constant.
    assert len(set(deltas)) == 1, f"sizes {measured} not linear"


def test_shape_poss_chain_stays_small(benchmark):
    query = rel("R")
    for _ in range(8):
        query = poss(choice_of("A", query))

    def run():
        return conservative_ra_query(query, SCHEMAS).dag_size()

    size = benchmark(run)
    assert size < 200
