"""Substrate micro-benchmarks: the Figure 3 operators one by one.

Not a paper experiment per se, but the per-operator costs explain every
macro result: χ is linear in choices × worlds, pγ/cγ are quadratic in
the number of worlds (pairwise grouping), poss/cert linear.
"""

import pytest

from repro.core import (
    cert,
    cert_group,
    choice_of,
    evaluate,
    poss,
    poss_group,
    product,
    rel,
    rename,
)
from repro.datagen import flights
from repro.worlds import World, WorldSet


@pytest.fixture(scope="module")
def split_worlds():
    """A 15-world set created by choice-of on a medium Flights."""
    base = WorldSet.single(World.of({"Flights": flights(15, 20, 5, seed=1)}))
    return evaluate(choice_of("Dep", rel("Flights")), base, name="F")


def test_choice_of(benchmark):
    ws = WorldSet.single(World.of({"Flights": flights(15, 20, 5, seed=1)}))
    result = benchmark(lambda: evaluate(choice_of("Dep", rel("Flights")), ws, name="Q"))
    assert len(result) == 15


def test_poss_across_worlds(benchmark, split_worlds):
    result = benchmark(lambda: evaluate(poss(rel("F")), split_worlds, name="Q"))
    assert len(result) == 15


def test_cert_across_worlds(benchmark, split_worlds):
    result = benchmark(lambda: evaluate(cert(rel("F")), split_worlds, name="Q"))
    assert len(result) == 15


def test_poss_group(benchmark, split_worlds):
    query = poss_group(("Arr",), ("Dep", "Arr"), rel("F"))
    benchmark(lambda: evaluate(query, split_worlds, name="Q"))


def test_cert_group(benchmark, split_worlds):
    query = cert_group(("Arr",), ("Dep", "Arr"), rel("F"))
    benchmark(lambda: evaluate(query, split_worlds, name="Q"))


def test_product_pairs_worlds(benchmark):
    ws = WorldSet.single(World.of({"Flights": flights(6, 8, 3, seed=1)}))
    query = product(
        choice_of("Dep", rel("Flights")),
        rename(
            {"Dep": "Dep2", "Arr": "Arr2"}, choice_of("Arr", rel("Flights"))
        ),
    )
    result = benchmark(lambda: evaluate(query, ws, name="Q"))
    assert len(result) >= 6
