"""Ablation: which Figure 7 rule groups buy the Example 6.1/6.2 wins?

DESIGN.md calls out the two rule classes (Commute and Reduce) as the
optimizer's design choices. This bench optimizes q2 with the full rule
set, the Reduce rules alone, and the Commute rules alone, and evaluates
each result. Shape claims: the full set dominates; Commute alone cannot
remove the χ (poss must first be pushed down to meet it), so it keeps
most of the original cost.
"""

import time

from repro.core import (
    answer,
    choice_of,
    poss,
    poss_group,
    product,
    project,
    rel,
    select,
)
from repro.datagen import flights, hotels
from repro.optimizer import Rewriter
from repro.optimizer.equivalences import (
    RULE_1_2_4,
    RULE_3,
    RULE_5,
    RULE_6,
    RULE_7,
    RULE_8,
    RULE_9_10,
    RULE_11,
    RULE_12,
    RULE_13,
    RULE_14,
    RULE_15,
    RULE_16,
    RULE_17,
    RULE_18_19,
    RULE_20,
    RULE_21,
    RULE_22_23,
    RULE_24,
)
from repro.relational import eq
from repro.worlds import World, WorldSet

SCHEMAS = {"HFlights": ("Dep", "Arr"), "Hotels": ("Name", "City", "Price")}

COMMUTE = (RULE_1_2_4, RULE_3, RULE_5, RULE_6, RULE_7, RULE_8, RULE_9_10)
REDUCE = (
    RULE_11,
    RULE_12,
    RULE_13,
    RULE_14,
    RULE_15,
    RULE_16,
    RULE_17,
    RULE_18_19,
    RULE_20,
    RULE_21,
    RULE_22_23,
    RULE_24,
)


def _q2():
    inner = poss_group(
        ("Dep",),
        ("Dep", "Arr", "Name", "City", "Price"),
        choice_of(("Dep", "City"), product(rel("HFlights"), rel("Hotels"))),
    )
    return poss(project("City", select(eq("Arr", "City"), inner)))


def _world_set():
    return WorldSet.single(
        World.of(
            {"HFlights": flights(5, 7, 3, seed=2), "Hotels": hotels(7, 2, seed=2)}
        )
    )


def _optimize_with(rules):
    rewriter = Rewriter(rules) if rules is not None else Rewriter()
    optimized, _ = rewriter.optimize(_q2(), SCHEMAS, finalize=rules is None)
    return optimized


def test_full_rule_set(benchmark):
    ws = _world_set()
    optimized = _optimize_with(None)
    benchmark(lambda: answer(optimized, ws))


def test_reduce_rules_only(benchmark):
    ws = _world_set()
    optimized = _optimize_with(REDUCE)
    benchmark(lambda: answer(optimized, ws))


def test_commute_rules_only(benchmark):
    ws = _world_set()
    optimized = _optimize_with(COMMUTE)
    benchmark(lambda: answer(optimized, ws))


def test_shape_ablation_ordering(benchmark):
    """Full ≤ either ablation; all preserve the answer."""
    ws = _world_set()
    reference = answer(_q2(), ws)
    timings = {}
    for label, rules in (("full", None), ("reduce", REDUCE), ("commute", COMMUTE)):
        optimized = _optimize_with(rules)
        assert answer(optimized, ws) == reference
        start = time.perf_counter()
        answer(optimized, ws)
        timings[label] = time.perf_counter() - start
    assert timings["full"] <= timings["commute"] * 1.5
    assert timings["full"] <= timings["reduce"] * 1.5
    benchmark(lambda: _optimize_with(None))
