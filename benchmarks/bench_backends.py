"""Experiment §5 end-to-end: explicit world enumeration vs inline plans.

Replays the datagen scenario suite on both execution backends and
records wall-clock, world counts, and representation sizes into
``BENCH_backends.json`` (written by ``conftest.pytest_sessionfinish``).

Shape claims:

* every scenario returns identical answers on both backends (this is
  re-asserted here, not only in the tier-1 differential suite);
* on the choice-of-heavy trip scenarios with ≥ 2¹⁰ worlds the inline
  backend wins by ≥ 5× — evaluation is polynomial in the inlined
  representation while the explicit engine pays one pass per world.
"""

from __future__ import annotations

import time

import pytest

from repro.backend.testing import run_scenario
from repro.datagen import Scenario, flights, scenarios

LARGE = {s.name: s for s in scenarios("large")}

#: A 2¹² world variant to expose the asymptotic trend beyond 2¹⁰.
TRIP_XL = Scenario(
    name="trip_certain_xl",
    relations=(("HFlights", flights(4096, 64, 3, seed=1)),),
    query="select certain Arr from HFlights choice of Dep;",
    approx_worlds=4096,
)

SUITE = [
    LARGE["trip_certain"],
    TRIP_XL,
    LARGE["trip_possible_open"],
    LARGE["acquisition"],
    LARGE["census_repair"],
    LARGE["tpch_what_if"],
]


def _representation_size(session) -> int:
    backend = session.backend
    if hasattr(backend, "representation"):
        return backend.representation.size()
    return sum(
        len(world[name])
        for world in backend.world_set.worlds
        for name in world.names
    )


def _timed_run(scenario: Scenario, backend: str, record, repeats: int = 3):
    best, kept = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        session, result = run_scenario(scenario, backend)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, kept = elapsed, (session, result)
    session, result = kept
    record(
        scenario.name,
        backend,
        best,
        session.world_count(),
        result.world_count(),
        scenario.approx_worlds,
        _representation_size(session),
        sum(len(answer) for answer in result.answers()),
    )
    return best, result


@pytest.mark.parametrize("scenario", SUITE, ids=lambda s: s.name)
def test_backends_agree_and_are_recorded(scenario, backend_recorder):
    _, explicit_result = _timed_run(scenario, "explicit", backend_recorder)
    _, inline_result = _timed_run(scenario, "inline", backend_recorder)
    assert explicit_result.answers() == inline_result.answers()


def test_shape_inline_wins_by_5x_beyond_1024_worlds(backend_recorder):
    """The acceptance bar: ≥ 5× on a scenario with ≥ 2¹⁰ worlds."""
    ratios = {}
    for scenario in (LARGE["trip_certain"], TRIP_XL):
        explicit_time, _ = _timed_run(scenario, "explicit", backend_recorder)
        inline_time, _ = _timed_run(scenario, "inline", backend_recorder)
        assert scenario.approx_worlds >= 2**10
        ratios[scenario.name] = explicit_time / inline_time
    assert max(ratios.values()) >= 5, ratios
