"""Experiment §5/§8 end-to-end: explicit world enumeration vs inline plans.

Replays the datagen scenario suite on both execution backends and
records median-of-N wall-clock (``--repeats``, default 3), a per-phase
breakdown (compile / rewrite / execute / decode), the inline route
(direct vs explicit fallback, with the fragment diagnostic), world
counts, and representation sizes into ``BENCH_backends.json`` (written
by ``conftest.pytest_sessionfinish``).

Shape claims:

* every scenario returns identical answers on both backends (this is
  re-asserted here, not only in the tier-1 differential suite);
* on the choice-of-heavy trip scenarios with ≥ 2¹⁰ worlds the inline
  backend wins by ≥ 5× — evaluation is polynomial in the inlined
  representation while the explicit engine pays one pass per world;
* the columnar kernel beats the tuple kernel on every ≥ 2¹²-world
  scenario (recorded as ``backend="inline-tuple"`` rows, so the
  kernel-level speedup is tracked next to the backend-level one);
* the XL scenarios (2¹⁶ worlds, ≥10⁵-row representations) run
  inline-only — the explicit side is recorded as *infeasible*, not as
  a zero — and the 2¹⁶-world trip completes in < 5 s;
* every scenario statement — including the aggregation-heavy
  ``tpch_what_if`` and the ``group worlds by ⟨subquery⟩`` acquisition
  variant that used to run ``route=fallback`` — now records
  ``route=direct``: the widened compiler carries SQL aggregation,
  condition subqueries and subquery-keyed world grouping on the
  inlined representation, which is what makes the inline-only
  ``tpch_what_if_xl`` scenario (2¹³ worlds) possible at all;
* DML with subqueries runs flat too (ISSUE 4): the small
  ``dml_subquery_cleanup`` scenario exercises subquery-bearing
  update/delete plus an OR-subquery condition on every backend, and
  the inline-only ``census_cleanup_dml_xl`` scenario replays that
  statement shape at 2¹³ worlds — decoding those worlds per DML
  statement (the old ``_reinline`` fallback) is exactly what the
  explicit side's *infeasible* row records;
* DML is columnar-native and batched (ISSUE 5): scripts replay through
  ``ISQLSession.run_script``, every DML scenario's inline rows carry a
  ``dml_apply`` phase (the mask/scatter/append application — asserted
  below, and gated by ``check_regression.py``), value-determined
  subquery DML evaluates on distinct value rows instead of the
  id-expanded table (``census_cleanup_dml_xl`` dropped ≥3× against the
  PR 4 baseline), and the 2¹⁶-world ``census_cleanup_dml_xxl``
  scenario pushes a five-statement subquery-free cleanup through the
  batch pipeline as one backend pass;
* the array kernel is the XL workhorse (ISSUE 6): every inline-only
  scenario gets an ``inline-array`` row, the headline pair
  (``trip_certain_2p16``, ``census_cleanup_dml_xxl``) must beat the
  columnar kernel live by ≥ 2× (the committed
  ``array_speedup_over_columnar_kernel`` ratios show ≥ 5×, gated by
  ``check_regression.py``), and the nightly-only 2²⁰-world
  ``trip_certain_2p20`` completes on the array kernel with its
  per-phase breakdown recorded;
* ``repair by key`` mints *factored* per-group world ids (ISSUE 8):
  the repaired scenarios' representation size is the **sum** of the
  per-group factor sizes, not their product — ``census_repair_xl``
  dropped from ~2·10⁵ rows (joint encoding) to ~10², the smoke-suite
  ``census_repair_dml`` scenario replays update/delete/insert against
  the factored, wild-column relation on every backend, and the
  nightly-only ``census_repair_2p20`` runs 2²⁰ repairs inline on the
  array kernel — all gated by ``check_regression.py``'s
  ``representation_size`` rule so the encoding cannot silently regress
  back toward product size.
"""

from __future__ import annotations

import gc
import threading
import time

import pytest

from repro.backend import InlineBackend, collect_phases
from repro.backend.testing import run_scenario
from repro.datagen import Scenario, flights, nightly_scenarios, scenarios, xl_scenarios
from repro.isql import ISQLSession
from repro.relational import Relation
from repro.relational.array_kernel import have_numpy
from repro.service import SessionPool

LARGE = {s.name: s for s in scenarios("large")}

#: A 2¹² world variant to expose the asymptotic trend beyond 2¹⁰.
TRIP_XL = Scenario(
    name="trip_certain_xl",
    relations=(("HFlights", flights(4096, 64, 3, seed=1)),),
    query="select certain Arr from HFlights choice of Dep;",
    approx_worlds=4096,
)

SUITE = [
    LARGE["trip_certain"],
    TRIP_XL,
    LARGE["trip_possible_open"],
    LARGE["acquisition"],
    LARGE["acquisition_subquery_grouping"],
    LARGE["census_repair"],
    LARGE["census_repair_dml"],
    LARGE["tpch_what_if"],
    LARGE["dml_subquery_cleanup"],
]

XL_SUITE = list(xl_scenarios())

#: Scenarios whose world count makes the kernel comparison meaningful
#: (≥ 2¹² worlds): these get an extra ``inline-tuple`` timing row.
KERNEL_COMPARED = {TRIP_XL.name} | {s.name for s in XL_SUITE}

#: The array kernel's headline scenarios (ISSUE 6): committed
#: BENCH_backends.json must show ≥ 5× over columnar via the
#: ``array_speedup_over_columnar_kernel`` map; the live bound asserted
#: here is 2× to keep shared-runner noise from flaking.
ARRAY_HEADLINE = {"trip_certain_2p16", "census_cleanup_dml_xxl"}

# The suites above pin ~10⁶ long-lived objects (the XL/XXL relations'
# row tuples) for the whole benchmark session. Freeze them into the
# GC's permanent generation so a timed region never pays a full-heap
# gen-2 scan whose cost scales with *other* scenarios' data — without
# this, adding a new XL scenario inflates every scenario measured
# after it. Collect first: freezing pending garbage would pin it
# forever.
gc.collect()
gc.freeze()


def _representation_size(session) -> int:
    backend = session.backend
    if hasattr(backend, "representation"):
        return backend.representation.size()
    return sum(
        len(world[name])
        for world in backend.world_set.worlds
        for name in world.names
    )


def _route_of(session) -> tuple[str | None, str | None]:
    """The inline route the session's statements actually took.

    Mirrors ``repro.isql.explain.inline_route_report``, but from the
    backend's recorded fallback events — which also cover script
    statements, not only the final query.
    """
    events = getattr(session.backend, "fallback_events", None)
    if events is None:
        return None, None
    if not events:
        return "direct", None
    reasons = "; ".join(dict.fromkeys(event[1] for event in events))
    return "fallback", reasons


def _timed_run(
    scenario: Scenario,
    backend,
    record,
    repeats: int = 3,
    label: str | None = None,
    max_rows: int | None = None,
    max_seconds: float | None = None,
    guard_overhead: float | None = None,
):
    """Median-of-*repeats* timing of one (scenario, backend) pair."""
    timings = []
    session = result = None
    for _ in range(repeats):
        # Keep only the latest session/result — run_scenario is
        # deterministic, and pinning one copy per repeat would triple
        # peak memory on the ≥10⁵-row XL representations. The previous
        # repeat's garbage (kernel twins are reference cycles, so it
        # lingers until a gen-2 pass) is collected *outside* the timed
        # region: each repeat measures the scenario, not its
        # predecessor's cleanup.
        session = result = None
        gc.collect()
        with collect_phases() as phases:
            start = time.perf_counter()
            session, result = run_scenario(
                scenario, backend, max_rows=max_rows, max_seconds=max_seconds
            )
            elapsed = time.perf_counter() - start
        timings.append((elapsed, dict(phases)))
    timings.sort(key=lambda timing: timing[0])
    elapsed, phases = timings[(len(timings) - 1) // 2]
    route, fallback_reason = _route_of(session)
    # ISSUE 3 acceptance: no benchmark scenario statement falls back
    # anymore — the widened compiler carries aggregation, condition
    # subqueries and subquery-keyed world grouping on the inlined
    # representation. A future scenario deliberately exercising the
    # residue opts out via Scenario.uses_fallback; explicit-backend
    # sessions have no route.
    if route is not None and not scenario.uses_fallback:
        assert route == "direct", (scenario.name, fallback_reason)
    # ISSUE 5 acceptance: DML scenarios surface their apply cost as a
    # dedicated per-phase row — a refactor that silently drops the
    # instrumentation (and with it the regression gate's input) fails
    # here, not in a dashboard weeks later.
    if route is not None and "dml" in scenario.name:
        assert "dml_apply" in phases, (scenario.name, phases)
    record(
        scenario.name,
        label if label is not None else backend,
        elapsed,
        session.world_count(),
        result.world_count(),
        scenario.approx_worlds,
        _representation_size(session),
        sum(len(answer) for answer in result.answers()),
        phases=phases,
        route=route,
        fallback_reason=fallback_reason,
        kernel=getattr(session.backend, "resolved_kernel", None),
        repeats=repeats,
        guard_overhead=guard_overhead,
    )
    return elapsed, result


def _record_explicit_infeasible(scenario: Scenario, record) -> None:
    """An explicit-backend row stating the scenario is out of reach."""
    record(
        scenario.name,
        "explicit",
        None,
        None,
        None,
        scenario.approx_worlds,
        None,
        None,
        infeasible=True,
    )


@pytest.mark.parametrize("scenario", SUITE, ids=lambda s: s.name)
def test_backends_agree_and_are_recorded(scenario, backend_recorder, bench_repeats):
    _, explicit_result = _timed_run(
        scenario, "explicit", backend_recorder, bench_repeats
    )
    _, inline_result = _timed_run(scenario, "inline", backend_recorder, bench_repeats)
    assert explicit_result.answers() == inline_result.answers()
    if scenario.name in KERNEL_COMPARED:
        _, tuple_result = _timed_run(
            scenario,
            lambda: InlineBackend(kernel="tuple"),
            backend_recorder,
            bench_repeats,
            label="inline-tuple",
        )
        assert tuple_result.answers() == inline_result.answers()


@pytest.mark.parametrize("scenario", XL_SUITE, ids=lambda s: s.name)
def test_xl_scenarios_inline_only(scenario, backend_recorder, bench_repeats):
    """2¹⁶ worlds / ≥10⁵-row representations: inline-only territory.

    The explicit backend would pay one evaluation pass per world —
    recorded as infeasible. Correctness is covered by the columnar vs
    tuple kernel differential (both must agree without any explicit
    reference), and the headline XL scenario must finish in < 5 s.
    """
    assert scenario.explicit_infeasible
    _record_explicit_infeasible(scenario, backend_recorder)
    columnar_seconds, columnar_result = _timed_run(
        scenario,
        lambda: InlineBackend(kernel="columnar"),
        backend_recorder,
        bench_repeats,
        label="inline",
    )
    _, tuple_result = _timed_run(
        scenario,
        lambda: InlineBackend(kernel="tuple"),
        backend_recorder,
        bench_repeats,
        label="inline-tuple",
    )
    assert tuple_result.answers() == columnar_result.answers()
    if have_numpy():
        array_seconds, array_result = _timed_run(
            scenario,
            lambda: InlineBackend(kernel="array"),
            backend_recorder,
            bench_repeats,
            label="inline-array",
        )
        assert array_result.answers() == columnar_result.answers()
        if scenario.name in ARRAY_HEADLINE:
            assert array_seconds * 2 < columnar_seconds, (
                scenario.name,
                columnar_seconds,
                array_seconds,
            )
    if scenario.name == "tpch_what_if_xl":
        # The former fallback workload, at 2¹³ worlds: the whole
        # aggregation/subquery statement set must stay flat and fast.
        assert columnar_seconds < 10.0, (
            f"{scenario.name}: {columnar_seconds:.2f}s ≥ 10s inline budget"
        )
    if scenario.approx_worlds >= 2**16:
        assert columnar_seconds < 5.0, (
            f"{scenario.name}: {columnar_seconds:.2f}s ≥ 5s inline budget"
        )


def test_guard_overhead_is_negligible(backend_recorder, bench_repeats):
    """Armed-but-idle resource budgets must cost (nearly) nothing.

    Replays the 2¹²-world trip on the inline backend twice in the same
    process — unguarded, then with huge never-firing ``max_rows`` /
    ``max_seconds`` budgets — and records the guarded run as an
    ``inline-guarded`` row whose ``guard_overhead`` field carries the
    paired ratio. ``check_regression.py`` gates that committed ratio at
    ≤ 1.1× (the ISSUE 7 bar); the live assertion here is looser to keep
    shared-runner noise from flaking the benchmark job itself.
    """
    repeats = max(bench_repeats, 3)
    plain_seconds, plain_result = _timed_run(
        TRIP_XL, "inline", backend_recorder, repeats
    )
    pending: dict = {}

    def deferred(*args, **kwargs):
        pending["args"], pending["kwargs"] = args, kwargs

    guarded_seconds, guarded_result = _timed_run(
        TRIP_XL,
        "inline",
        deferred,
        repeats,
        label="inline-guarded",
        max_rows=2**62,
        max_seconds=1e9,
    )
    overhead = guarded_seconds / plain_seconds
    pending["kwargs"]["guard_overhead"] = overhead
    backend_recorder(*pending["args"], **pending["kwargs"])
    assert guarded_result.answers() == plain_result.answers()
    assert overhead < 1.5, (plain_seconds, guarded_seconds)


def test_pool_concurrent_readers(backend_recorder, bench_repeats):
    """The service layer's read path must stay near-free (ISSUE 9).

    Replays the 2¹²-world trip query 32 times, twice in the same
    process: serially on one plain session, then as 4 threads × 8 reads
    each through a warmed :class:`SessionPool` — connection checkout,
    thread re-pinning, snapshot sync, the DBAPI text path, checkin. The
    GIL serializes the evaluation work itself, so the pooled/plain
    wall-clock ratio isolates the per-read service overhead. Recorded
    as an ``inline-pool`` row for scenario ``pool_concurrent_readers``
    whose ``snapshot_overhead`` field carries the paired ratio;
    ``check_regression.py`` gates that committed ratio at ≤ 1.2× (the
    live assertion is looser for shared-runner noise).
    """
    n_readers, reads_per_thread = 4, 8
    total_reads = n_readers * reads_per_thread
    repeats = max(bench_repeats, 3)

    def seed() -> ISQLSession:
        session = ISQLSession(backend=InlineBackend())
        for name, relation in TRIP_XL.relations:
            session.register(name, relation)
        return session

    plain_session = seed()
    plain_timings = []
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        for _ in range(total_reads):
            plain_result = plain_session.query(TRIP_XL.query)
        plain_timings.append(time.perf_counter() - start)
    plain_seconds = sorted(plain_timings)[(repeats - 1) // 2]

    pool = SessionPool(seed(), size=n_readers)
    # Warm the pool: spawning the per-connection sessions is a one-time
    # cost, not part of the steady-state per-read overhead under gate.
    warm = [pool.acquire() for _ in range(n_readers)]
    for connection in warm:
        pool.release(connection)
    pooled_answers = []

    def reader(barrier: threading.Barrier) -> None:
        barrier.wait()
        for _ in range(reads_per_thread):
            with pool.connection() as connection:
                cursor = connection.execute(TRIP_XL.query)
        pooled_answers.append(cursor.result)

    pooled_timings = []
    for _ in range(repeats):
        gc.collect()
        barrier = threading.Barrier(n_readers)
        threads = [
            threading.Thread(target=reader, args=(barrier,))
            for _ in range(n_readers)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        pooled_timings.append(time.perf_counter() - start)
    pooled_seconds = sorted(pooled_timings)[(repeats - 1) // 2]

    for result in pooled_answers:
        assert result.answers() == plain_result.answers()
    overhead = pooled_seconds / plain_seconds
    final, _ = pool.store.spawn_session()
    backend_recorder(
        "pool_concurrent_readers",
        "inline-pool",
        pooled_seconds,
        final.world_count(),
        plain_result.world_count(),
        TRIP_XL.approx_worlds,
        _representation_size(final),
        sum(len(answer) for answer in plain_result.answers()),
        kernel=getattr(final.backend, "resolved_kernel", None),
        repeats=repeats,
        snapshot_overhead=overhead,
    )
    pool.close()
    final.close()
    assert overhead < 2.0, (plain_seconds, pooled_seconds)


def test_shape_inline_wins_by_5x_beyond_1024_worlds(backend_recorder, bench_repeats):
    """The PR-1 acceptance bar: ≥ 5× on a scenario with ≥ 2¹⁰ worlds."""
    ratios = {}
    for scenario in (LARGE["trip_certain"], TRIP_XL):
        explicit_time, _ = _timed_run(
            scenario, "explicit", backend_recorder, bench_repeats
        )
        inline_time, _ = _timed_run(
            scenario, "inline", backend_recorder, bench_repeats
        )
        assert scenario.approx_worlds >= 2**10
        ratios[scenario.name] = explicit_time / inline_time
    assert max(ratios.values()) >= 5, ratios


def test_shape_columnar_kernel_wins_beyond_4096_worlds(backend_recorder, bench_repeats):
    """The PR-2 acceptance bar, measured live: the columnar kernel must
    clearly beat the tuple kernel (PR 1's engine) on a ≥ 2¹²-world
    scenario. The ≥ 3× claim against PR 1's committed seconds is
    visible in BENCH_backends.json's ``columnar_speedup_over_tuple_kernel``;
    the live bound is 2× to keep shared-runner noise from flaking."""
    tuple_time, _ = _timed_run(
        TRIP_XL,
        lambda: InlineBackend(kernel="tuple"),
        backend_recorder,
        max(bench_repeats, 3),
        label="inline-tuple",
    )
    columnar_time, _ = _timed_run(
        TRIP_XL,
        lambda: InlineBackend(kernel="columnar"),
        backend_recorder,
        max(bench_repeats, 3),
        label="inline",
    )
    assert columnar_time * 2 < tuple_time, (tuple_time, columnar_time)


@pytest.mark.skipif(not have_numpy(), reason="array kernel needs numpy")
def test_nightly_trip_2p20_array_kernel(backend_recorder, bench_repeats):
    """The first 2²⁰-world scenario: array-kernel-only, nightly-only.

    16× the XL trip's world count over a ~3·10⁶-row flat table — the
    per-row kernels are not worth timing here, so only the array kernel
    is measured (with its per-phase breakdown); explicit stays
    infeasible. Excluded from the PR-time benchmark job by the
    ``not nightly`` keyword filter: generating the instance alone costs
    seconds, and the run is minutes on a cold cache.
    """
    (scenario,) = nightly_scenarios(["trip_certain_2p20"])
    assert scenario.explicit_infeasible
    # The 2²⁰ instance is built here, not at module import, so PR-time
    # benchmark runs never pay for it. Freeze its ~3·10⁶ row tuples for
    # the same reason the module freezes the XL suites.
    gc.collect()
    gc.freeze()
    _record_explicit_infeasible(scenario, backend_recorder)
    seconds, result = _timed_run(
        scenario,
        lambda: InlineBackend(kernel="array"),
        backend_recorder,
        bench_repeats,
        label="inline-array",
    )
    assert result.world_count() == 1  # certain answers are world-uniform
    (answer,) = result.answers()
    assert ("A0",) in answer.rows  # the guaranteed common arrival
    assert seconds < 60.0, f"{scenario.name}: {seconds:.2f}s ≥ 60s nightly budget"


@pytest.mark.skipif(not have_numpy(), reason="array kernel needs numpy")
def test_nightly_census_repair_2p20_array_kernel(backend_recorder, bench_repeats):
    """2²⁰ worlds by *repair*, not choice-of: the factored-id headline.

    20 key-violating census blocks repair into 20 independent per-group
    id factors — the representation stays sum-sized (~10³ world-table
    rows across factors over a ~4·10³-row census) where the joint
    product encoding would materialize 2²⁰ world-table rows and never
    finish. Exact world counting runs as a product of per-factor
    distinct-profile counts, so both the session and the result report
    2²⁰ without enumerating a single joint id. Nightly-only for the
    same budget reason as the 2²⁰ trip.
    """
    (scenario,) = nightly_scenarios(["census_repair_2p20"])
    assert scenario.explicit_infeasible
    gc.collect()
    gc.freeze()
    _record_explicit_infeasible(scenario, backend_recorder)
    seconds, result = _timed_run(
        scenario,
        lambda: InlineBackend(kernel="array"),
        backend_recorder,
        bench_repeats,
        label="inline-array",
    )
    # Every world repairs each violating group to exactly one record,
    # so the distinct result worlds are the full 2²⁰ — counted via the
    # per-factor product, never by enumeration.
    assert result.world_count() == 2**20
    (answer,) = result.answers()
    # The 4096 − 20 unconflicted people are certain; the 20 repaired
    # ones are too (both candidate records agree on SSN and Name).
    assert len(answer.rows) == 4096
    assert seconds < 60.0, f"{scenario.name}: {seconds:.2f}s ≥ 60s nightly budget"


def test_statement_replay_plan_cache(backend_recorder, bench_repeats):
    """Prepared-statement replay (PR 10): the plan cache's headline.

    Re-executes the 2¹²-world trip query 100× with real DML on an
    unrelated side table interleaved between reads — the plan cache
    serves every re-compile and the result memo every re-evaluation,
    because the interleaved DML bumps only the side table's version.
    The identical replay runs on a cache-off session in the same
    process; the paired uncached/cached wall-clock ratio is recorded
    as ``plan_cache_speedup`` on the ``inline-replay`` row (with the
    cached run's hit rate as ``cache_hit_rate``), and
    ``check_regression.py`` gates the committed ratio at ≥ 3× — the
    ISSUE 10 acceptance bar, asserted live here as well.
    """
    replays = 100
    repeats = max(bench_repeats, 3)

    def replay(cache: bool):
        timings = []
        session = None
        for _ in range(repeats):
            session = ISQLSession(backend=InlineBackend(cache=cache))
            for name, relation in TRIP_XL.relations:
                session.register(name, relation)
            session.register("Audit", Relation(("N",), {(0,)}))
            gc.collect()
            start = time.perf_counter()
            for index in range(replays):
                result = session.query(TRIP_XL.query)
                # Alternate two fixed DML texts so the replay exercises
                # genuine invalidation traffic (Audit's version bumps on
                # every statement) while the trip memo entry survives.
                if index % 2:
                    session.run_script("delete from Audit where N = 1;")
                else:
                    session.run_script("insert into Audit values (1);")
            timings.append(time.perf_counter() - start)
        return sorted(timings)[(repeats - 1) // 2], session, result

    uncached_seconds, _, uncached_result = replay(cache=False)
    cached_seconds, cached_session, cached_result = replay(cache=True)
    assert cached_result.answers() == uncached_result.answers()
    info = cached_session.cache_info()
    hit_rate = info.hits / (info.hits + info.misses)
    assert hit_rate > 0.9, info  # ~1 miss per cache per repeat
    speedup = uncached_seconds / cached_seconds
    backend_recorder(
        "statement_replay",
        "inline-replay",
        cached_seconds,
        cached_session.world_count(),
        cached_result.world_count(),
        TRIP_XL.approx_worlds,
        _representation_size(cached_session),
        sum(len(answer) for answer in cached_result.answers()),
        kernel=getattr(cached_session.backend, "resolved_kernel", None),
        repeats=repeats,
        plan_cache_speedup=speedup,
        cache_hit_rate=hit_rate,
    )
    backend_recorder(
        "statement_replay",
        "inline-replay-nocache",
        uncached_seconds,
        cached_session.world_count(),
        uncached_result.world_count(),
        TRIP_XL.approx_worlds,
        _representation_size(cached_session),
        sum(len(answer) for answer in uncached_result.answers()),
        kernel=getattr(cached_session.backend, "resolved_kernel", None),
        repeats=repeats,
    )
    assert speedup >= 3.0, (uncached_seconds, cached_seconds)
