"""Experiment §8 (conclusion): dedicated physical operators vs Figure 6.

The paper conjectures that query plans with dedicated physical
operators for the I-SQL constructs "should perform much better than the
default relational algebra query over the … inlined representation".
This bench evaluates a group-worlds-by-heavy query (the operator whose
RA simulation is quadratic in the number of worlds) on a growing
Flights relation through:

* the Figure 6 general translation, evaluated over the inlined rep,
* the §5.3 optimized translation,
* the §8 physical operators (hash grouping, O(worlds × rows)).

Shape claims: identical answers; physical beats the general translation
(the paper's conjecture), with the gap widening in the world count.
"""

import time

from repro.core import cert, cert_group, choice_of, poss, project, rel
from repro.datagen import flights
from repro.inline import (
    InlinedRepresentation,
    conservative_ra_query,
    optimized_ra_query,
    physical_answer,
    translate_general,
)
from repro.relational import Database

QUERY = poss(
    cert_group(("Arr",), ("Dep", "Arr"), choice_of("Dep", rel("Flights")))
)


def _db(n_deps):
    return Database({"Flights": flights(n_deps, 12, 4, seed=5)})


def test_general_translation(benchmark):
    db = _db(10)
    expr = conservative_ra_query(QUERY, db.schemas())
    benchmark(lambda: expr.evaluate(db))


def test_optimized_translation(benchmark):
    db = _db(10)
    expr = optimized_ra_query(QUERY, db.schemas())
    benchmark(lambda: expr.evaluate(db))


def test_physical_operators(benchmark):
    db = _db(10)
    benchmark(lambda: physical_answer(QUERY, db))


def test_physical_repair_by_key(benchmark):
    """The operator only the physical engine supports over inlined data."""
    from repro.core import repair_by_key
    from repro.relational import Relation

    rows = [(i // 2, f"v{i}") for i in range(16)]  # 2^8 repairs
    db = Database({"R": Relation(("K", "V"), rows)})
    query = cert(project("K", repair_by_key("K", rel("R"))))
    result = benchmark(lambda: physical_answer(query, db))
    assert len(result) == 8


def test_shape_physical_beats_general_translation(benchmark):
    """The §8 conjecture, asserted across a world-count sweep."""
    gaps = []
    for n_deps in (8, 16, 24):
        db = _db(n_deps)
        general = conservative_ra_query(QUERY, db.schemas())

        start = time.perf_counter()
        general_answer = general.evaluate(db)
        general_time = time.perf_counter() - start

        start = time.perf_counter()
        fast_answer = physical_answer(QUERY, db)
        physical_time = time.perf_counter() - start

        assert fast_answer == general_answer
        assert physical_time < general_time
        gaps.append(general_time / physical_time)
    # The advantage grows with the number of worlds.
    assert gaps[-1] > gaps[0]
    benchmark(lambda: physical_answer(QUERY, _db(16)))
