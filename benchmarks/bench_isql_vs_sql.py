"""Experiment §2 (trip planning): I-SQL vs the SQL formulations.

The paper argues I-SQL phrases the certain-destination query more
concisely than SQL, whose division must be simulated with two nested
not-exists. This bench runs all three formulations on scaled data:

* I-SQL: ``select certain Arr from HFlights choice of Dep``
* SQL: the double-not-exists simulation of division
* RA: the division query of Example 5.8

Shape claims: identical answers; the relational division is the fastest
and the nested not-exists (quadratic re-scans) the slowest at scale.
"""

import time

import pytest

from repro.isql import ISQLSession
from repro.relational import Database, Divide, Project, Table

DOUBLE_NOT_EXISTS = """
    select Arr from HFlights F1
    where not exists
      (select * from HFlights F2
       where not exists
         (select * from HFlights F3
          where F3.Dep = F2.Dep and F3.Arr = F1.Arr));
"""

ISQL = "select certain Arr from HFlights choice of Dep;"

DIVISION = Divide(
    Project(("Arr", "Dep"), Table("HFlights")),
    Project(("Dep",), Table("HFlights")),
)


@pytest.fixture(scope="module")
def session(small_flights):
    s = ISQLSession()
    s.register("HFlights", small_flights)
    return s


def test_isql_choice_certain(benchmark, session):
    result = benchmark(lambda: session.query(ISQL).relation)
    assert result.rows == {("A0",)}


def test_sql_double_not_exists(benchmark, session):
    result = benchmark(lambda: session.query(DOUBLE_NOT_EXISTS).relation)
    assert result.rows == {("A0",)}


def test_ra_division(benchmark, small_flights):
    db = Database({"HFlights": small_flights})
    result = benchmark(lambda: DIVISION.evaluate(db))
    assert result.rows == {("A0",)}


def test_shape_all_formulations_agree_and_division_wins(benchmark, medium_flights):
    s = ISQLSession()
    s.register("HFlights", medium_flights)
    db = Database({"HFlights": medium_flights})

    start = time.perf_counter()
    sql_answer = s.query(DOUBLE_NOT_EXISTS).relation
    sql_time = time.perf_counter() - start

    start = time.perf_counter()
    isql_answer = s.query(ISQL).relation
    isql_time = time.perf_counter() - start

    division_answer = benchmark(lambda: DIVISION.evaluate(db))
    start = time.perf_counter()
    DIVISION.evaluate(db)
    division_time = time.perf_counter() - start

    assert sql_answer == isql_answer == division_answer
    assert division_time < sql_time
