"""Experiment §7: world-pairing on inlined representations.

Shape claims: pairing the 2ⁿ-subset world-set yields exactly 4ⁿ worlds
(the counting argument for WSA's inexpressiveness of pairing), the
inlined-representation implementation matches the semantic definition,
and its cost grows with the squared world count.
"""

import time

from repro.inline import (
    InlinedRepresentation,
    pair_on_inlined,
    pair_worlds,
    subset_world_set,
)


def test_pairing_on_inlined(benchmark):
    rep = InlinedRepresentation.of_world_set(subset_world_set([1, 2, 3]))
    paired = benchmark(lambda: pair_on_inlined(rep, "R", "R2"))
    assert paired.world_count() == 64


def test_pairing_on_explicit_worlds(benchmark):
    ws = subset_world_set([1, 2, 3])
    paired = benchmark(lambda: pair_worlds(ws, "R", "R2"))
    assert len(paired) == 64


def test_shape_exponential_growth(benchmark):
    def counts():
        return [
            pair_on_inlined(
                InlinedRepresentation.of_world_set(subset_world_set(list(range(n)))),
                "R",
                "R2",
            ).world_count()
            for n in (1, 2, 3, 4)
        ]

    measured = benchmark(counts)
    assert measured == [4, 16, 64, 256]


def test_shape_inlined_matches_semantics(benchmark):
    ws = subset_world_set([1, 2])
    rep = InlinedRepresentation.of_world_set(ws)

    start = time.perf_counter()
    semantic = pair_worlds(ws, "R", "R2")
    time.perf_counter() - start

    paired = benchmark(lambda: pair_on_inlined(rep, "R", "R2"))
    assert paired.rep() == semantic
