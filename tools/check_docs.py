"""Link and anchor checker for the repository's markdown documentation.

Scans every ``*.md`` at the repo root and under ``docs/`` and verifies:

* relative links point at files (or directories) that exist;
* ``#fragment`` links — both in-page and cross-page — name a real
  heading (GitHub slug rules: lowercase, punctuation dropped, spaces
  to dashes);
* no link target is an absolute filesystem path.

External ``http(s)`` links are not fetched (CI must not depend on the
network); they are only checked for an empty target. Exit code 0 means
clean; 1 prints one line per problem, so the docs CI job fails loudly.

Usage::

    python tools/check_docs.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` — markdown links, excluding images' leading ``!``.
LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root: Path) -> list[Path]:
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def anchors_of(path: Path) -> set[str]:
    text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(match) for match in HEADING.findall(text)}


def check(root: Path) -> list[str]:
    problems: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}

    def anchors(path: Path) -> set[str]:
        if path not in anchor_cache:
            anchor_cache[path] = anchors_of(path)
        return anchor_cache[path]

    for source in markdown_files(root):
        text = CODE_FENCE.sub("", source.read_text(encoding="utf-8"))
        for target in LINK.findall(text):
            where = f"{source.relative_to(root)}: ({target})"
            if not target:
                problems.append(f"{where} empty link target")
                continue
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("/"):
                problems.append(f"{where} absolute path link")
                continue
            path_part, _, fragment = target.partition("#")
            resolved = (
                source.parent / path_part if path_part else source
            ).resolve()
            if not resolved.exists():
                problems.append(f"{where} target does not exist")
                continue
            if fragment:
                if resolved.is_dir() or resolved.suffix != ".md":
                    problems.append(
                        f"{where} fragment on a non-markdown target"
                    )
                elif github_slug(fragment) not in anchors(resolved):
                    problems.append(
                        f"{where} anchor #{fragment} not found in "
                        f"{resolved.name}"
                    )
    return problems


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]).resolve() if args else Path(__file__).resolve().parents[1]
    problems = check(root)
    if problems:
        print("documentation link problems:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    count = len(markdown_files(root))
    print(f"docs OK: {count} markdown files, all links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
